"""Unit tests for repro.util.timing."""

import pytest

from repro.util.timing import Stopwatch


class TestStopwatch:
    def test_accumulates(self):
        sw = Stopwatch()
        with sw:
            pass
        first = sw.elapsed
        with sw:
            sum(range(1000))
        assert sw.elapsed >= first >= 0.0

    def test_reset(self):
        sw = Stopwatch()
        with sw:
            pass
        sw.reset()
        assert sw.elapsed == 0.0

    def test_not_reentrant(self):
        sw = Stopwatch()
        with pytest.raises(RuntimeError):
            with sw:
                with sw:
                    pass

    def test_reset_while_running(self):
        sw = Stopwatch()
        with pytest.raises(RuntimeError):
            with sw:
                sw.reset()
