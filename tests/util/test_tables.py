"""Unit tests for repro.util.tables."""

import pytest

from repro.util.tables import format_series, format_table


class TestFormatTable:
    def test_basic_alignment(self):
        out = format_table(["n", "value"], [(1, 2.0), (100, 3.5)])
        lines = out.splitlines()
        assert lines[0].startswith("n")
        assert "---" in lines[1]
        assert len(lines) == 4
        # All rows have equal width.
        assert len({len(line) for line in lines}) == 1

    def test_title(self):
        out = format_table(["a"], [(1,)], title="My Title")
        assert out.splitlines()[0] == "My Title"

    def test_bool_rendering(self):
        out = format_table(["ok"], [(True,), (False,)])
        assert "yes" in out and "no" in out

    def test_float_format(self):
        out = format_table(["x"], [(3.14159,)], floatfmt=".2f")
        assert "3.14" in out and "3.1416" not in out

    def test_mismatched_row_raises(self):
        with pytest.raises(ValueError, match="headers"):
            format_table(["a", "b"], [(1,)])

    def test_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert len(out.splitlines()) == 2


class TestFormatSeries:
    def test_basic(self):
        out = format_series("n", [1, 2], {"moves": [3, 4], "bound": [5, 6]})
        lines = out.splitlines()
        assert "moves" in lines[0] and "bound" in lines[0]
        assert len(lines) == 4

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError, match="mismatched"):
            format_series("n", [1, 2], {"a": [1]})
