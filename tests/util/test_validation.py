"""Unit tests for repro.util.validation."""

import numpy as np
import pytest

from repro.errors import InvalidProblemError
from repro.util.validation import (
    check_index_pair,
    check_nonnegative,
    check_positive_int,
    check_probability,
)


class TestCheckPositiveInt:
    def test_accepts_plain_int(self):
        assert check_positive_int(3, "x") == 3

    def test_accepts_numpy_integer(self):
        assert check_positive_int(np.int64(7), "x") == 7

    def test_rejects_bool(self):
        with pytest.raises(InvalidProblemError, match="x must be an integer"):
            check_positive_int(True, "x")

    def test_rejects_float(self):
        with pytest.raises(InvalidProblemError):
            check_positive_int(2.5, "x")

    def test_rejects_below_minimum(self):
        with pytest.raises(InvalidProblemError, match=">= 1"):
            check_positive_int(0, "x")

    def test_custom_minimum(self):
        assert check_positive_int(3, "x", minimum=3) == 3
        with pytest.raises(InvalidProblemError, match=">= 4"):
            check_positive_int(3, "x", minimum=4)

    def test_rejects_string(self):
        with pytest.raises(InvalidProblemError):
            check_positive_int("5", "x")


class TestCheckNonnegative:
    def test_accepts_zero(self):
        assert check_nonnegative(0, "y") == 0.0

    def test_accepts_int_and_float(self):
        assert check_nonnegative(2, "y") == 2.0
        assert check_nonnegative(2.5, "y") == 2.5

    def test_rejects_negative(self):
        with pytest.raises(InvalidProblemError, match="non-negative"):
            check_nonnegative(-1e-12, "y")

    def test_rejects_nan(self):
        with pytest.raises(InvalidProblemError):
            check_nonnegative(float("nan"), "y")

    def test_rejects_non_numeric(self):
        with pytest.raises(InvalidProblemError, match="real number"):
            check_nonnegative(object(), "y")

    def test_accepts_infinity(self):
        # +inf is a legitimate sentinel cost.
        assert check_nonnegative(float("inf"), "y") == float("inf")


class TestCheckIndexPair:
    def test_valid(self):
        assert check_index_pair(0, 5, 5) == (0, 5)
        assert check_index_pair(2, 3, 5) == (2, 3)

    @pytest.mark.parametrize("i,j", [(-1, 2), (2, 2), (3, 2), (0, 6)])
    def test_invalid(self, i, j):
        with pytest.raises(InvalidProblemError):
            check_index_pair(i, j, 5)


class TestCheckProbability:
    def test_bounds(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0

    def test_above_one(self):
        with pytest.raises(InvalidProblemError, match="<= 1"):
            check_probability(1.0001, "p")

    def test_negative(self):
        with pytest.raises(InvalidProblemError):
            check_probability(-0.1, "p")
