"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# One moderate profile for everything: the solvers under test do Θ(n⁴)
# work per example, so examples must stay small and few.
settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def clrs_chain():
    """The classic CLRS matrix-chain instance; optimal cost 15125."""
    from repro.problems import MatrixChainProblem

    return MatrixChainProblem([30, 35, 15, 5, 10, 20, 25])


@pytest.fixture
def clrs_bst():
    """The CLRS optimal-BST instance; optimal expected cost 2.75."""
    from repro.problems import OptimalBSTProblem

    return OptimalBSTProblem(
        [0.15, 0.10, 0.05, 0.10, 0.20], [0.05, 0.10, 0.05, 0.05, 0.05, 0.10]
    )


@pytest.fixture
def square_polygon():
    """Unit square: two triangulations, both with total perimeter-weight
    2·(1 + 1 + sqrt(2)) = twice a right triangle's perimeter."""
    from repro.problems import PolygonTriangulationProblem

    return PolygonTriangulationProblem(
        [(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)], rule="perimeter"
    )


@pytest.fixture
def rng():
    return np.random.default_rng(12345)
