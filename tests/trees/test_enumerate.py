"""Unit tests for exhaustive tree enumeration (the definition oracle)."""

import pytest

from repro.core.sequential import solve_sequential
from repro.errors import InvalidProblemError
from repro.problems.generators import random_generic
from repro.trees.enumerate import (
    brute_force_value,
    catalan,
    count_trees,
    enumerate_trees,
)


class TestCatalan:
    def test_values(self):
        assert [catalan(m) for m in range(8)] == [1, 1, 2, 5, 14, 42, 132, 429]

    def test_negative(self):
        with pytest.raises(ValueError):
            catalan(-1)


class TestEnumerate:
    @pytest.mark.parametrize("span", [1, 2, 3, 4, 5, 6])
    def test_counts_match_catalan(self, span):
        trees = list(enumerate_trees(0, span))
        assert len(trees) == count_trees(0, span) == catalan(span - 1)

    def test_all_distinct(self):
        trees = list(enumerate_trees(0, 5))
        assert len(set(trees)) == len(trees)

    def test_all_valid_members_of_s(self):
        for t in enumerate_trees(2, 6):
            assert t.interval == (2, 6)
            for node in t.internal_nodes():
                assert node.left.interval == (node.i, node.split)
                assert node.right.interval == (node.split, node.j)

    def test_span_guard(self):
        with pytest.raises(ValueError):
            list(enumerate_trees(0, 15))

    def test_bad_interval(self):
        with pytest.raises(ValueError):
            list(enumerate_trees(3, 3))


class TestBruteForce:
    @pytest.mark.parametrize("seed", range(6))
    def test_equals_sequential_dp(self, seed):
        """The Section 2 definition (min over all trees) equals the
        recurrence — the strongest independent check of the DP."""
        p = random_generic(8, seed=seed)
        assert brute_force_value(p) == pytest.approx(solve_sequential(p).value)

    def test_equals_parallel_solvers(self):
        from repro.core import solve

        p = random_generic(7, seed=42)
        ref = brute_force_value(p)
        for method in ("huang", "huang-banded", "huang-compact", "rytter"):
            assert solve(p, method=method).value == pytest.approx(ref)

    def test_size_guard(self):
        with pytest.raises(InvalidProblemError):
            brute_force_value(random_generic(13, seed=0))
