"""Unit tests for tree properties and the Fig. 1 chain decomposition."""

import pytest

from repro.errors import InvalidTreeError
from repro.trees import (
    chain_decomposition,
    complete_tree,
    is_full_binary,
    node_sizes,
    random_tree,
    skewed_tree,
    tree_height,
    zigzag_tree,
)
from repro.trees.properties import size_class


class TestBasics:
    def test_node_sizes(self):
        t = complete_tree(4)
        sizes = node_sizes(t)
        assert sizes[(0, 4)] == 4
        assert sizes[(0, 2)] == 2
        assert sizes[(0, 1)] == 1

    def test_tree_height(self):
        assert tree_height(complete_tree(8)) == 3
        assert tree_height(skewed_tree(8)) == 7

    def test_is_full_binary(self):
        assert is_full_binary(random_tree(10, seed=0))


class TestSizeClass:
    def test_boundaries(self):
        # i² < size <= (i+1)²
        assert size_class(1) == 0
        assert size_class(2) == 1
        assert size_class(4) == 1
        assert size_class(5) == 2
        assert size_class(9) == 2
        assert size_class(10) == 3
        assert size_class(16) == 3
        assert size_class(17) == 4

    def test_invalid(self):
        with pytest.raises(InvalidTreeError):
            size_class(0)


class TestChainDecomposition:
    def test_vine_chain_is_bounded(self):
        """On a vine, the chain from the root descends while sizes exceed
        i²; Lemma 3.3 bounds its length by 2i + 1."""
        t = skewed_tree(26)  # class i=5 (25 < 26 <= 36)
        chain = chain_decomposition(t)
        i = size_class(26)
        assert len(chain) <= 2 * i + 1
        # The chain is a real descent.
        for a, b in zip(chain, chain[1:]):
            assert b.interval in {a.left.interval, a.right.interval}

    def test_complete_tree_chain_is_short(self):
        """A complete tree's root has both children a class down almost
        immediately: chains have length 1 or 2."""
        t = complete_tree(25)
        assert len(chain_decomposition(t)) <= 2

    def test_chain_end_condition(self):
        """The last chain node has both children of size <= i² (or is
        as deep as the threshold allows)."""
        t = zigzag_tree(17)
        chain = chain_decomposition(t)
        i = size_class(17)
        last = chain[-1]
        if not last.is_leaf:
            big = [c for c in (last.left, last.right) if c.size > i * i]
            assert len(big) != 1  # 0 (clean end) or 2 (class <= 1 corner)

    def test_chain_on_subnode(self):
        t = random_tree(30, seed=3)
        some_internal = next(x for x in t.internal_nodes() if x.size >= 5)
        chain = chain_decomposition(t, some_internal)
        assert chain[0] is some_internal

    def test_foreign_node_rejected(self):
        t = random_tree(10, seed=0)
        other = random_tree(12, seed=1)
        with pytest.raises(InvalidTreeError):
            chain_decomposition(t, other)

    def test_bound_holds_everywhere_on_shapes(self):
        """check_chain_bound over all nodes of all three Fig. 2 shapes."""
        from repro.pebbling.invariants import check_chain_bound

        for shape in (zigzag_tree, skewed_tree, complete_tree):
            assert check_chain_bound(shape(40)) == []

    def test_bound_holds_on_random_trees(self):
        from repro.pebbling.invariants import check_chain_bound

        for seed in range(5):
            assert check_chain_bound(random_tree(50, seed=seed)) == []
