"""Unit tests for ParseTree and PartialTree (the set S of Section 2)."""

import numpy as np
import pytest

from repro.errors import InvalidTreeError
from repro.problems import MatrixChainProblem
from repro.trees import ParseTree, PartialTree


def small_tree():
    """((0,1)(1,2))(2,3) over (0,3), split 2 then 1."""
    left = ParseTree.node(ParseTree.leaf(0), ParseTree.leaf(1))
    return ParseTree.node(left, ParseTree.leaf(2))


class TestConstruction:
    def test_leaf(self):
        leaf = ParseTree.leaf(3)
        assert leaf.interval == (3, 4) and leaf.is_leaf and leaf.size == 1 and leaf.height == 0

    def test_leaf_must_be_unit(self):
        with pytest.raises(InvalidTreeError, match="unit interval"):
            ParseTree(0, 2)

    def test_leaf_cannot_have_children(self):
        with pytest.raises(InvalidTreeError, match="children"):
            ParseTree(0, 1, left=ParseTree.leaf(0))

    def test_internal_requires_both_children(self):
        with pytest.raises(InvalidTreeError, match="both children"):
            ParseTree(0, 2, split=1, left=ParseTree.leaf(0))

    def test_children_must_match_split(self):
        with pytest.raises(InvalidTreeError, match="left child"):
            ParseTree(0, 3, split=2, left=ParseTree.leaf(0), right=ParseTree.leaf(2))

    def test_split_inside(self):
        with pytest.raises(InvalidTreeError, match="not strictly inside"):
            ParseTree(0, 2, split=2, left=ParseTree.leaf(0), right=ParseTree.leaf(1))

    def test_node_joins_adjacent(self):
        t = ParseTree.node(ParseTree.leaf(0), ParseTree.leaf(1))
        assert t.interval == (0, 2) and t.split == 1

    def test_node_rejects_gap(self):
        with pytest.raises(InvalidTreeError, match="adjacent"):
            ParseTree.node(ParseTree.leaf(0), ParseTree.leaf(2))

    def test_negative_index(self):
        with pytest.raises(InvalidTreeError):
            ParseTree(-1, 0)


class TestStructure:
    def test_size_and_height(self):
        t = small_tree()
        assert t.size == 3 and t.height == 2

    def test_nodes_count(self):
        t = small_tree()
        assert len(list(t.nodes())) == 5
        assert len(list(t.internal_nodes())) == 2
        assert len(list(t.leaves())) == 3

    def test_intervals(self):
        assert small_tree().intervals() == {(0, 3), (0, 2), (2, 3), (0, 1), (1, 2)}

    def test_find(self):
        t = small_tree()
        assert t.find(1, 2).interval == (1, 2)
        assert t.find(0, 3) is t
        assert t.find(1, 3) is None

    def test_path_to(self):
        t = small_tree()
        path = [x.interval for x in t.path_to(1, 2)]
        assert path == [(0, 3), (0, 2), (1, 2)]

    def test_path_to_missing(self):
        with pytest.raises(InvalidTreeError):
            small_tree().path_to(1, 3)

    def test_splits(self):
        assert small_tree().splits() == {(0, 3): 2, (0, 2): 1}

    def test_from_split_table(self):
        split = np.full((4, 4), -1)
        split[0, 3] = 2
        split[0, 2] = 1
        t = ParseTree.from_split_table(split)
        assert t == small_tree()

    def test_from_split_table_bad_entry(self):
        split = np.full((4, 4), -1)
        split[0, 3] = 0  # outside (0, 3)
        with pytest.raises(InvalidTreeError):
            ParseTree.from_split_table(split)

    def test_equality_and_hash(self):
        assert small_tree() == small_tree()
        assert hash(small_tree()) == hash(small_tree())
        other = ParseTree.node(ParseTree.leaf(0), ParseTree.node(ParseTree.leaf(1), ParseTree.leaf(2)))
        assert small_tree() != other


class TestWeights:
    def test_weight_is_sum_of_nodes(self):
        p = MatrixChainProblem([2, 3, 4, 5])
        t = small_tree()
        expected = p.split_cost(0, 2, 3) + p.split_cost(0, 1, 2)  # init = 0
        assert t.weight(p) == expected

    def test_optimal_weight_matches_dp(self):
        from repro.core.reconstruct import reconstruct_tree
        from repro.core.sequential import solve_sequential

        p = MatrixChainProblem([4, 10, 3, 12, 20, 7])
        seq = solve_sequential(p)
        t = reconstruct_tree(p, seq.w)
        assert t.weight(p) == pytest.approx(seq.value)


class TestPartialTree:
    def test_gap_must_be_a_node(self):
        with pytest.raises(InvalidTreeError, match="not a node"):
            PartialTree(small_tree(), (1, 3))

    def test_partial_weight_root_gap_is_zero(self):
        p = MatrixChainProblem([2, 3, 4, 5])
        t = small_tree()
        assert t.partial(0, 3).partial_weight(p) == 0.0

    def test_partial_weight_excludes_gap_subtree(self):
        p = MatrixChainProblem([2, 3, 4, 5])
        t = small_tree()
        # Gap (0,2): remaining nodes are root and leaf (2,3).
        pt = t.partial(0, 2)
        assert pt.partial_weight(p) == p.split_cost(0, 2, 3)

    def test_partial_weight_leaf_gap(self):
        p = MatrixChainProblem([2, 3, 4, 5])
        t = small_tree()
        pt = t.partial(2, 3)
        assert pt.partial_weight(p) == p.split_cost(0, 2, 3) + p.split_cost(0, 1, 2)

    def test_w_equals_pw_plus_subtree_weight(self):
        """The W(T) = PW(T2) + W(T1) identity behind equation (3)."""
        p = MatrixChainProblem([3, 1, 4, 1, 5, 9])
        from repro.trees.shapes import random_tree

        t = random_tree(5, seed=11)
        for node in t.nodes():
            pt = t.partial(node.i, node.j)
            sub = t.find(node.i, node.j)
            assert t.weight(p) == pytest.approx(
                pt.partial_weight(p) + sub.weight(p)
            )

    def test_gap_path(self):
        t = small_tree()
        pt = t.partial(1, 2)
        assert [x.interval for x in pt.gap_path()] == [(0, 3), (0, 2), (1, 2)]
