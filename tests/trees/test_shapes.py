"""Unit tests for the Fig. 2 shape constructors."""

import pytest

from repro.errors import InvalidTreeError
from repro.trees import (
    comb_tree,
    complete_tree,
    random_tree,
    skewed_tree,
    zigzag_tree,
)


class TestSkewed:
    def test_height_is_n_minus_1(self):
        assert skewed_tree(8).height == 7

    def test_left_spine_intervals(self):
        t = skewed_tree(4, direction="left")
        # Spine: (0,4) -> (0,3) -> (0,2) -> (0,1): all share left endpoint.
        spine = []
        cur = t
        while not cur.is_leaf:
            spine.append(cur.interval)
            cur = cur.left
        assert spine == [(0, 4), (0, 3), (0, 2)]

    def test_right_spine(self):
        t = skewed_tree(4, direction="right")
        spine = []
        cur = t
        while not cur.is_leaf:
            spine.append(cur.interval)
            cur = cur.right
        assert spine == [(0, 4), (1, 4), (2, 4)]

    def test_single_leaf(self):
        assert skewed_tree(1).is_leaf

    def test_bad_direction(self):
        with pytest.raises(InvalidTreeError):
            skewed_tree(3, direction="up")

    def test_deep_construction(self):
        # Must not hit the recursion limit.
        assert skewed_tree(5000).size == 5000


class TestZigzag:
    def test_alternating_endpoints(self):
        t = zigzag_tree(5, first="left")
        # Spine: (0,5)->(0,4)->(1,4)->(1,3)->... alternating which
        # endpoint is kept.
        spine = [t.interval]
        cur = t
        while not cur.is_leaf:
            nxt = cur.left if not cur.left.is_leaf else cur.right
            if nxt.is_leaf and cur.left.is_leaf and cur.right.is_leaf:
                break
            cur = nxt
            spine.append(cur.interval)
        assert spine[:4] == [(0, 5), (0, 4), (1, 4), (1, 3)]

    def test_height_is_n_minus_1(self):
        assert zigzag_tree(9).height == 8

    def test_turn_on_every_level(self):
        """No two consecutive spine steps share the same kept endpoint —
        the defining property ('makes a turn on every level')."""
        t = zigzag_tree(10)
        cur = t
        moves = []
        while not cur.is_leaf:
            big = cur.left if cur.left.size >= cur.right.size else cur.right
            if big.size == 1:
                break
            moves.append("L" if big.i == cur.i else "R")
            cur = big
        assert all(a != b for a, b in zip(moves, moves[1:]))

    def test_first_right(self):
        t = zigzag_tree(5, first="right")
        assert t.left.is_leaf and not t.right.is_leaf

    def test_deep_construction(self):
        assert zigzag_tree(5000).size == 5000

    def test_small_sizes(self):
        assert zigzag_tree(1).is_leaf
        assert zigzag_tree(2).split == 1


class TestComplete:
    def test_height_logarithmic(self):
        assert complete_tree(8).height == 3
        assert complete_tree(16).height == 4
        assert complete_tree(9).height == 4

    def test_offset(self):
        t = complete_tree(4, offset=3)
        assert t.interval == (3, 7)

    def test_balanced_split(self):
        t = complete_tree(7)
        assert t.split == 4  # ceil(7/2) = 4 to the left


class TestComb:
    def test_period_one_is_zigzag(self):
        assert comb_tree(7, period=1) == zigzag_tree(7)

    def test_large_period_is_skewed(self):
        assert comb_tree(7, period=100) == skewed_tree(7)

    def test_intermediate_period_valid(self):
        t = comb_tree(12, period=3)
        assert t.size == 12 and t.height == 11

    def test_validation(self):
        with pytest.raises(Exception):
            comb_tree(5, period=0)


class TestRandom:
    def test_deterministic(self):
        assert random_tree(10, seed=4) == random_tree(10, seed=4)

    def test_varies_with_seed(self):
        assert random_tree(10, seed=1) != random_tree(10, seed=2)

    def test_root_interval(self):
        t = random_tree(6, seed=0, offset=2)
        assert t.interval == (2, 8) and t.size == 6

    def test_all_intervals_nested_properly(self):
        t = random_tree(20, seed=9)
        for node in t.internal_nodes():
            assert node.left.interval == (node.i, node.split)
            assert node.right.interval == (node.split, node.j)
