"""Unit tests for adversarial instance synthesis."""

import numpy as np
import pytest

from repro.core.reconstruct import reconstruct_tree
from repro.core.sequential import solve_sequential
from repro.errors import InvalidTreeError
from repro.trees import (
    complete_tree,
    random_tree,
    skewed_tree,
    synthesize_instance,
    zigzag_tree,
)


class TestZeroOne:
    @pytest.mark.parametrize("shape", [zigzag_tree, skewed_tree, complete_tree])
    def test_forced_tree_is_optimal(self, shape):
        tree = shape(9)
        prob = synthesize_instance(tree, style="zero_one")
        seq = solve_sequential(prob)
        assert seq.value == 0.0
        assert reconstruct_tree(prob, seq.w) == tree

    def test_random_trees_forced(self):
        for seed in range(6):
            tree = random_tree(11, seed=seed)
            prob = synthesize_instance(tree, style="zero_one")
            seq = solve_sequential(prob)
            assert reconstruct_tree(prob, seq.w) == tree


class TestUniformPlus:
    def test_value_formula(self):
        """c(0, n) = 2n - 1 for the uniform_plus style."""
        tree = random_tree(8, seed=1)
        prob = synthesize_instance(tree, style="uniform_plus")
        assert solve_sequential(prob).value == 2 * 8 - 1

    def test_forced_tree_is_optimal(self):
        tree = zigzag_tree(10)
        prob = synthesize_instance(tree, style="uniform_plus")
        seq = solve_sequential(prob)
        assert reconstruct_tree(prob, seq.w) == tree

    def test_subtree_values(self):
        """Every tree node (i, j) has c(i, j) = 2 (j - i) - 1."""
        tree = random_tree(9, seed=2)
        prob = synthesize_instance(tree, style="uniform_plus")
        seq = solve_sequential(prob)
        for node in tree.nodes():
            assert seq.w[node.i, node.j] == 2 * node.size - 1


class TestJitter:
    def test_jitter_preserves_optimum(self):
        tree = random_tree(9, seed=3)
        clean = synthesize_instance(tree, style="zero_one")
        noisy = synthesize_instance(tree, style="zero_one", jitter=0.4, seed=5)
        s_clean = solve_sequential(clean)
        s_noisy = solve_sequential(noisy)
        assert s_noisy.value == s_clean.value == 0.0
        assert reconstruct_tree(noisy, s_noisy.w) == tree

    def test_jitter_bounds(self):
        tree = random_tree(5, seed=0)
        with pytest.raises(ValueError):
            synthesize_instance(tree, jitter=0.5)
        with pytest.raises(ValueError):
            synthesize_instance(tree, jitter=-0.1)

    def test_jitter_deterministic(self):
        tree = random_tree(6, seed=0)
        a = synthesize_instance(tree, jitter=0.2, seed=9).f_table()
        b = synthesize_instance(tree, jitter=0.2, seed=9).f_table()
        assert np.array_equal(
            np.nan_to_num(a, posinf=-1), np.nan_to_num(b, posinf=-1)
        )


class TestValidation:
    def test_must_root_at_zero(self):
        tree = random_tree(5, seed=0, offset=1)
        with pytest.raises(InvalidTreeError, match="rooted at"):
            synthesize_instance(tree)

    def test_unknown_style(self):
        with pytest.raises(ValueError, match="style"):
            synthesize_instance(random_tree(5, seed=0), style="bogus")
