"""Unit tests for the command-line interface."""

import json
import os
import time

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.family == "chain" and args.method == "huang-banded"

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestSolveCommand:
    def test_dims_chain(self, capsys):
        rc = main(["solve", "--dims", "30,35,15,5,10,20,25", "--method", "huang"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "15125" in out
        assert "iters" in out

    def test_sequential_no_iters(self, capsys):
        rc = main(["solve", "--family", "generic", "--n", "8", "--method", "sequential"])
        out = capsys.readouterr().out
        assert rc == 0 and "value" in out and "iters" not in out

    @pytest.mark.parametrize(
        "family", ["chain", "bst", "polygon", "generic", "bottleneck", "reliability"]
    )
    def test_all_families(self, family, capsys):
        rc = main(["solve", "--family", family, "--n", "8", "--method", "huang-banded"])
        assert rc == 0
        assert "value" in capsys.readouterr().out

    def test_algebra_option(self, capsys):
        rc = main(
            [
                "solve",
                "--dims",
                "30,35,15,5,10,20,25",
                "--method",
                "huang",
                "--algebra",
                "minimax",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "algebra : minimax" in out
        assert "5250" in out  # the CLRS chain's bottleneck optimum

    def test_min_plus_output_unchanged(self, capsys):
        """The default algebra must not add an algebra line (output
        compatibility with pre-algebra scripts)."""
        rc = main(["solve", "--dims", "2,3,4", "--method", "sequential"])
        out = capsys.readouterr().out
        assert rc == 0 and "algebra" not in out

    def test_unknown_algebra_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "--algebra", "tropical-typo"])

    def test_family_preferred_algebra_used_by_default(self, capsys):
        """Without --algebra, the bottleneck family resolves to its
        preferred minimax objective (and says so)."""
        rc = main(["solve", "--family", "bottleneck", "--n", "8", "--seed", "3"])
        out = capsys.readouterr().out
        assert rc == 0 and "algebra : minimax" in out

    def test_tree_flag(self, capsys):
        rc = main(["solve", "--dims", "2,3,4", "--method", "sequential", "--tree"])
        out = capsys.readouterr().out
        assert rc == 0 and "(0,2)" in out

    def test_trace_flag(self, capsys):
        rc = main(["solve", "--family", "chain", "--n", "6", "--method", "huang", "--trace"])
        out = capsys.readouterr().out
        assert rc == 0 and "w'(0,n)" in out

    def test_policy_option(self, capsys):
        rc = main(
            [
                "solve",
                "--family",
                "chain",
                "--n",
                "10",
                "--method",
                "huang-banded",
                "--policy",
                "w-stable",
            ]
        )
        assert rc == 0


class TestPebbleCommand:
    def test_zigzag(self, capsys):
        rc = main(["pebble", "--shape", "zigzag", "--n", "256"])
        out = capsys.readouterr().out
        assert rc == 0 and "22 moves" in out and "bound 32" in out

    def test_complete_with_trace(self, capsys):
        rc = main(["pebble", "--shape", "complete", "--n", "32", "--trace"])
        out = capsys.readouterr().out
        assert rc == 0 and "pebbling game" in out

    def test_random_rytter(self, capsys):
        rc = main(["pebble", "--shape", "random", "--n", "64", "--rule", "rytter"])
        assert rc == 0


class TestCostsCommand:
    def test_table(self, capsys):
        rc = main(["costs", "--n", "16", "64"])
        out = capsys.readouterr().out
        assert rc == 0 and "rytter" in out and "n = 64" in out


class TestAverageCommand:
    def test_runs(self, capsys):
        rc = main(["average", "--n-max", "64", "--samples", "5"])
        out = capsys.readouterr().out
        assert rc == 0 and "log2" in out


class TestBatchCommand:
    def _write_specs(self, tmp_path, lines):
        path = tmp_path / "specs.jsonl"
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        return str(path)

    def test_heterogeneous_batch(self, tmp_path, capsys):
        path = self._write_specs(
            tmp_path,
            [
                '{"dims": [30, 35, 15, 5, 10, 20, 25], "method": "huang"}',
                '{"family": "bst", "n": 6, "seed": 1, "method": "huang-banded"}',
                '{"family": "polygon", "n": 8, "seed": 2}',
                '{"family": "generic", "n": 7, "seed": 3, "method": "huang-compact"}',
            ],
        )
        rc = main(["batch", "--input", path, "--backend", "thread"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "15125" in out and "4 problems, 0 failed" in out

    def test_jsonl_output_and_error_isolation(self, tmp_path, capsys):
        import json

        path = self._write_specs(
            tmp_path,
            [
                '{"dims": [10, 20, 5, 30], "method": "huang"}',
                "this is not json",
                '{"family": "chain", "n": 50, "method": "huang", "max_n": 8}',
            ],
        )
        rc = main(["batch", "--input", path, "--jsonl"])
        records = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        assert rc == 1  # failures present
        assert records[0]["value"] == 2500.0 and records[0]["error"] is None
        assert records[1]["error"] is not None
        assert "max_n" in records[2]["error"]
        assert [r["line"] for r in records] == [1, 2, 3]

    def test_stdin_input(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr(
            "sys.stdin", io.StringIO('{"dims": [2, 3, 4]}\n')
        )
        rc = main(["batch", "--backend", "serial"])
        out = capsys.readouterr().out
        assert rc == 0 and "24" in out

    def test_process_backend(self, tmp_path, capsys):
        path = self._write_specs(
            tmp_path,
            ['{"dims": [10, 20, 5, 30], "method": "huang"}'] * 3,
        )
        rc = main(["batch", "--input", path, "--backend", "process", "--max-workers", "2"])
        out = capsys.readouterr().out
        assert rc == 0 and out.count("2500") == 3

    def test_unknown_method_line_is_isolated(self, capsys, monkeypatch):
        """A bad per-line method becomes an in-place error record; the
        rest of the batch still solves (the error-isolation contract)."""
        import io
        import json

        monkeypatch.setattr(
            "sys.stdin",
            io.StringIO(
                '{"dims": [2, 3, 4], "method": "bogus"}\n'
                '{"dims": [10, 20, 5, 30], "method": "huang"}\n'
            ),
        )
        rc = main(["batch", "--jsonl", "--backend", "serial"])
        records = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        assert rc == 1
        assert "unknown method" in records[0]["error"]
        assert records[1]["value"] == 2500.0

    def test_typoed_spec_key_is_rejected(self, capsys, monkeypatch):
        """A spec with no recognized problem key (e.g. 'dmis' typo) must
        become an error record, never a silently-solved random default."""
        import io
        import json

        monkeypatch.setattr(
            "sys.stdin",
            io.StringIO(
                '{"dmis": [30, 35, 15]}\n'
                '{"family": "nonsense", "n": 5}\n'
                '{"dims": [2, 3, 4]}\n'
            ),
        )
        rc = main(["batch", "--jsonl", "--backend", "serial"])
        records = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        assert rc == 1
        assert "must contain one of" in records[0]["error"]
        assert "unknown family" in records[1]["error"]
        assert records[2]["value"] == 24.0

    def test_batch_algebra_default_and_per_spec_override(self, capsys, monkeypatch):
        """``repro batch --algebra`` sets the batch default; per-spec
        ``algebra`` keys override it; values come back decoded."""
        import io
        import json

        monkeypatch.setattr(
            "sys.stdin",
            io.StringIO(
                '{"dims": [30, 35, 15, 5, 10, 20, 25]}\n'
                '{"dims": [30, 35, 15, 5, 10, 20, 25], "algebra": "min_plus"}\n'
                '{"weights": [7, 2, 9, 4, 8], "algebra": "minimax", "method": "huang"}\n'
            ),
        )
        rc = main(["batch", "--jsonl", "--backend", "serial", "--algebra", "max_plus"])
        records = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        assert rc == 0
        assert records[0]["value"] == 58000.0  # max_plus (batch default)
        assert records[1]["value"] == 15125.0  # per-spec min_plus override
        assert records[2]["error"] is None

    def test_batch_bad_algebra_spec_is_isolated(self, capsys, monkeypatch):
        """An unknown per-spec algebra fails inside the solve worker and
        is reported in place; the rest of the batch still solves."""
        import io
        import json

        monkeypatch.setattr(
            "sys.stdin",
            io.StringIO(
                '{"dims": [2, 3, 4], "algebra": "tropical-typo"}\n'
                '{"dims": [10, 20, 5, 30], "method": "huang-compact"}\n'
            ),
        )
        rc = main(["batch", "--jsonl", "--backend", "serial"])
        records = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        assert rc == 1
        assert "unknown algebra" in records[0]["error"]
        assert records[1]["value"] == 2500.0

    def test_explicit_bottleneck_and_reliability_specs(self, capsys, monkeypatch):
        import io
        import json

        monkeypatch.setattr(
            "sys.stdin",
            io.StringIO(
                '{"weights": [3, 9, 2, 7], "algebra": "minimax"}\n'
                '{"connectors": [0.9, 0.8], "leaves": [0.99, 0.95, 0.97], '
                '"algebra": "maxmin"}\n'
            ),
        )
        rc = main(["batch", "--jsonl", "--backend", "serial"])
        records = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        assert rc == 0
        assert records[0]["value"] == 14.0  # min over trees of the max split
        assert records[1]["value"] == 0.8  # the weakest usable connector

    def test_invalid_max_workers_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["batch", "--max-workers", "0"])


class TestAlgebrasCommand:
    def test_lists_all_registered_algebras(self, capsys):
        from repro.core import list_algebras

        rc = main(["algebras"])
        out = capsys.readouterr().out
        assert rc == 0
        for name in list_algebras():
            assert name in out
        assert "combine" in out and "extend" in out


class TestSolveBackendOption:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_backend_matches_serial(self, backend, capsys):
        rc = main(
            [
                "solve",
                "--dims",
                "30,35,15,5,10,20,25",
                "--method",
                "huang",
                "--backend",
                backend,
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0 and "15125" in out

    def test_compact_method_choice(self, capsys):
        rc = main(
            ["solve", "--family", "generic", "--n", "9", "--method", "huang-compact"]
        )
        assert rc == 0 and "value" in capsys.readouterr().out

    def test_invalid_workers_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["solve", "--dims", "2,3,4", "--workers", "0"]
            )

    def test_start_method_solve(self, capsys):
        rc = main(
            [
                "solve",
                "--dims",
                "30,35,15,5,10,20,25",
                "--method",
                "huang",
                "--backend",
                "process",
                "--workers",
                "2",
                "--start-method",
                "fork",
            ]
        )
        assert rc == 0 and "15125" in capsys.readouterr().out

    def test_unknown_start_method_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["solve", "--backend", "process", "--start-method", "greenlet"]
            )

    def test_start_method_not_silently_dropped_for_sequential(self):
        """Execution flags reach solve() for every method, so a
        start-method without the process backend errors instead of
        being ignored (regression: the CLI forwarded them only for
        iterative methods)."""
        from repro.errors import InvalidProblemError

        with pytest.raises(InvalidProblemError, match="process"):
            main(
                [
                    "solve",
                    "--dims",
                    "2,3,4",
                    "--method",
                    "sequential",
                    "--start-method",
                    "spawn",
                ]
            )


class TestPlanCommand:
    def test_prints_compiled_schedule(self, capsys):
        rc = main(["plan", "--family", "chain", "--n", "12", "--method", "huang"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "plan: HuangSolver" in out
        assert "activate" in out and "square" in out and "pebble" in out
        assert "DenseSquareKernel" in out

    def test_process_backend_plan_reports_store(self, capsys):
        rc = main(
            [
                "plan",
                "--dims",
                "10,20,5,30",
                "--method",
                "huang-banded",
                "--backend",
                "process",
                "--workers",
                "2",
                "--tiles",
                "3",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "shared-memory store" in out
        assert "commit buffers" in out

    def test_sequential_method_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["plan", "--method", "sequential"])

    def test_batch_start_method_flag_parses(self):
        args = build_parser().parse_args(
            ["batch", "--backend", "process", "--start-method", "fork"]
        )
        assert args.start_method == "fork"


class TestServeRequestCommands:
    def test_serve_flags_parse(self):
        args = build_parser().parse_args(
            [
                "serve", "--socket", "/tmp/x.sock", "--backend", "thread",
                "--workers", "2", "--batch-window-ms", "2.5",
                "--max-batch", "8", "--cache-mb", "16", "--max-requests", "4",
            ]
        )
        assert args.socket == "/tmp/x.sock"
        assert args.batch_window_ms == 2.5
        assert args.max_batch == 8 and args.max_requests == 4

    def test_request_flags_parse(self):
        args = build_parser().parse_args(
            ["request", "--socket", "s.sock", "--input", "in.jsonl", "--shutdown"]
        )
        assert args.shutdown and args.input == "in.jsonl"

    def test_request_without_server_fails_cleanly(self, capsys, tmp_path):
        rc = main(["request", "--socket", str(tmp_path / "absent.sock"), "--status"])
        err = capsys.readouterr().err
        assert rc == 2
        assert "cannot connect" in err

    def test_serve_then_request_roundtrip(self, tmp_path, capsys):
        import json
        import threading

        socket_path = str(tmp_path / "cli.sock")
        spec_file = tmp_path / "reqs.jsonl"
        spec_file.write_text(
            '{"dims": [10, 20, 5, 30], "method": "huang-banded"}\n'
            '{"dims": [3, 7, 2]}\n'
        )
        server = threading.Thread(
            target=main,
            args=(
                [
                    "serve", "--socket", socket_path, "--backend", "serial",
                    "--method", "sequential", "--batch-window-ms", "1",
                    "--max-requests", "2",
                ],
            ),
            daemon=True,
        )
        server.start()
        deadline = time.monotonic() + 10.0
        while not os.path.exists(socket_path):
            assert time.monotonic() < deadline, "serve did not come up"
            time.sleep(0.02)
        rc = main(["request", "--socket", socket_path, "--input", str(spec_file)])
        out = capsys.readouterr().out
        server.join(timeout=10.0)
        assert rc == 0 and not server.is_alive()
        records = [json.loads(line) for line in out.splitlines() if line.startswith("{")]
        assert [r["value"] for r in records] == [2500.0, 42.0]

    def test_cache_dir_flags_parse(self):
        args = build_parser().parse_args(
            ["serve", "--cache-dir", "/tmp/l2", "--delta-max-dirty", "0.25"]
        )
        assert args.cache_dir == "/tmp/l2" and args.delta_max_dirty == 0.25
        args = build_parser().parse_args(["fleet", "--cache-dir", "/tmp/l2"])
        assert args.cache_dir == "/tmp/l2"

    def test_serve_cache_dir_survives_server_restart(self, tmp_path, capsys):
        """Two separate `repro serve` lifetimes on one --cache-dir: the
        second serves the first's solve from the L2 tier (source=cache)
        without re-solving."""
        import json
        import threading

        cache_dir = str(tmp_path / "l2")
        spec_file = tmp_path / "req.jsonl"
        spec_file.write_text('{"dims": [10, 20, 5, 30], "method": "sequential"}\n')
        sources = []
        for incarnation in range(2):
            socket_path = str(tmp_path / f"cli-l2-{incarnation}.sock")
            server = threading.Thread(
                target=main,
                args=(
                    [
                        "serve", "--socket", socket_path, "--backend", "serial",
                        "--method", "sequential", "--batch-window-ms", "1",
                        "--cache-dir", cache_dir, "--max-requests", "1",
                    ],
                ),
                daemon=True,
            )
            server.start()
            deadline = time.monotonic() + 10.0
            while not os.path.exists(socket_path):
                assert time.monotonic() < deadline, "serve did not come up"
                time.sleep(0.02)
            rc = main(["request", "--socket", socket_path, "--input", str(spec_file)])
            out = capsys.readouterr().out
            server.join(timeout=10.0)
            assert rc == 0 and not server.is_alive()
            record = next(
                json.loads(line) for line in out.splitlines() if line.startswith("{")
            )
            assert record["ok"] and record["value"] == 2500.0
            sources.append(record["source"])
        assert sources == ["batch", "cache"]

    def test_request_isolates_bad_input_lines(self, tmp_path, capsys):
        import json
        import threading

        socket_path = str(tmp_path / "iso.sock")
        spec_file = tmp_path / "mixed.jsonl"
        spec_file.write_text(
            "not json at all\n"
            "[1, 2]\n"
            '{"dims": [10, 20, 5, 30]}\n'
        )
        server = threading.Thread(
            target=main,
            args=(
                [
                    "serve", "--socket", socket_path, "--backend", "serial",
                    "--batch-window-ms", "1", "--max-requests", "1",
                ],
            ),
            daemon=True,
        )
        server.start()
        deadline = time.monotonic() + 10.0
        while not os.path.exists(socket_path):
            assert time.monotonic() < deadline, "serve did not come up"
            time.sleep(0.02)
        rc = main(["request", "--socket", socket_path, "--input", str(spec_file)])
        out = capsys.readouterr().out
        server.join(timeout=10.0)
        records = [json.loads(line) for line in out.splitlines() if line.startswith("{")]
        assert rc == 1 and len(records) == 3
        assert [r["ok"] for r in records] == [False, False, True]
        assert "line 1" in records[0]["error"]
        assert "JSON object" in records[1]["error"]
        assert records[2]["value"] == 2500.0


class TestFleetAndTransportCommands:
    def test_fleet_flags_parse(self):
        args = build_parser().parse_args(
            [
                "fleet", "--shards", "3", "--socket", "/tmp/f.sock",
                "--backend", "serial", "--workers", "2",
                "--batch-window-ms", "2", "--max-batch", "8",
                "--cache-mb", "16", "--max-requests", "5",
            ]
        )
        assert args.shards == 3 and args.socket == "/tmp/f.sock"
        assert args.backend == "serial" and args.max_requests == 5

    def test_serve_tcp_flag_parses(self):
        args = build_parser().parse_args(["serve", "--tcp", "127.0.0.1:7466"])
        assert args.tcp == "127.0.0.1:7466"

    def test_request_fleet_flag_parses(self):
        args = build_parser().parse_args(["request", "--fleet", "4"])
        assert args.fleet == 4

    def test_request_through_ephemeral_fleet(self, tmp_path, capsys):
        import json

        spec_file = tmp_path / "reqs.jsonl"
        spec_file.write_text(
            '{"dims": [10, 20, 5, 30], "method": "huang-banded"}\n'
            "not json\n"
            '{"dims": [3, 7, 2]}\n'
        )
        rc = main(["request", "--fleet", "2", "--input", str(spec_file)])
        out = capsys.readouterr().out
        records = [json.loads(line) for line in out.splitlines() if line.startswith("{")]
        assert rc == 1  # the bad line is reported as a failure
        assert len(records) == 3
        assert [r["ok"] for r in records] == [True, False, True]
        assert records[0]["value"] == 2500.0
        assert records[2]["value"] == 42.0

    def test_serve_then_request_over_tcp(self, capsys):
        import json
        import threading

        server = threading.Thread(
            target=main,
            args=(
                [
                    "serve", "--tcp", "127.0.0.1:0", "--backend", "serial",
                    "--method", "sequential", "--batch-window-ms", "1",
                    "--max-requests", "1",
                ],
            ),
            daemon=True,
        )
        server.start()
        # The ephemeral port is printed on the listening banner.
        deadline = time.monotonic() + 10.0
        port = None
        while port is None and time.monotonic() < deadline:
            out = capsys.readouterr().out
            for line in out.splitlines():
                if "listening on" in line:
                    port = int(line.rsplit(":", 1)[1])
            time.sleep(0.02)
        assert port, "serve --tcp never announced its port"
        import io
        import sys as _sys

        stdin_backup = _sys.stdin
        _sys.stdin = io.StringIO('{"dims": [10, 20, 5, 30]}\n')
        try:
            rc = main(["request", "--tcp", f"127.0.0.1:{port}"])
        finally:
            _sys.stdin = stdin_backup
        server.join(timeout=10.0)
        out = capsys.readouterr().out
        records = [json.loads(line) for line in out.splitlines() if line.startswith("{")]
        assert rc == 0 and not server.is_alive()
        assert records and records[0]["value"] == 2500.0


class TestServeStaleSocketFix:
    def test_startup_failure_after_bind_unlinks_socket(self, tmp_path, monkeypatch):
        """The PR 5 satellite fix at the CLI level: `repro serve` whose
        startup fails *after* the bind (stdout gone when the listening
        banner prints) must not leave the socket file behind."""
        import sys as _sys

        socket_path = tmp_path / "stale.sock"

        class ExplodingStdout:
            def write(self, text):
                raise RuntimeError("stdout is gone")

            def flush(self):
                pass

        monkeypatch.setattr(_sys, "stdout", ExplodingStdout())
        with pytest.raises(RuntimeError, match="stdout is gone"):
            main([
                "serve", "--socket", str(socket_path), "--backend", "serial",
                "--batch-window-ms", "1",
            ])
        assert not socket_path.exists(), "stale socket file left behind"

    def test_stale_socket_from_a_dead_server_is_reclaimed(self, tmp_path):
        """A leftover socket file (SIGKILLed predecessor) must not stop
        the next `repro serve` from binding."""
        import json
        import socket as socketmod
        import threading

        socket_path = str(tmp_path / "reuse.sock")
        corpse = socketmod.socket(socketmod.AF_UNIX, socketmod.SOCK_STREAM)
        corpse.bind(socket_path)
        corpse.close()
        assert os.path.exists(socket_path)

        server = threading.Thread(
            target=main,
            args=(
                [
                    "serve", "--socket", socket_path, "--backend", "serial",
                    "--batch-window-ms", "1", "--max-requests", "1",
                ],
            ),
            daemon=True,
        )
        server.start()
        from repro.service import ServiceClient

        deadline = time.monotonic() + 10.0
        client = None
        while client is None:
            try:
                client = ServiceClient(socket_path)
            except OSError:
                assert time.monotonic() < deadline, "serve did not reclaim the socket"
                time.sleep(0.02)
        with client:
            record = client.request({"dims": [10, 20, 5, 30]})
        server.join(timeout=10.0)
        assert record["ok"] and record["value"] == 2500.0
        assert not server.is_alive()

    def test_malformed_tcp_address_fails_cleanly(self, capsys):
        assert main(["request", "--tcp", "garbage"]) == 2
        assert main(["serve", "--tcp", "host:"]) == 2
        err = capsys.readouterr().err
        assert "malformed TCP address" in err
        assert "Traceback" not in err

    def test_serve_refuses_socket_with_live_server(self, tmp_path, capsys):
        import threading

        socket_path = str(tmp_path / "busy.sock")
        first = threading.Thread(
            target=main,
            args=(
                [
                    "serve", "--socket", socket_path, "--backend", "serial",
                    "--batch-window-ms", "1", "--max-requests", "1",
                ],
            ),
            daemon=True,
        )
        first.start()
        deadline = time.monotonic() + 10.0
        while not os.path.exists(socket_path):
            assert time.monotonic() < deadline
            time.sleep(0.02)
        # Second serve on the same live socket: clean exit 2, no traceback,
        # and the live server's socket file is left alone.
        rc = main([
            "serve", "--socket", socket_path, "--backend", "serial",
            "--batch-window-ms", "1",
        ])
        assert rc == 2
        assert "live server" in capsys.readouterr().err
        assert os.path.exists(socket_path), "second serve clobbered the live socket"
        from repro.service import ServiceClient

        with ServiceClient(socket_path) as client:
            assert client.request({"dims": [10, 20, 5, 30]})["value"] == 2500.0
        first.join(timeout=10.0)
        assert not first.is_alive()

    def test_request_fleet_refuses_explicit_server_address(self, capsys):
        assert main(["request", "--fleet", "2", "--tcp", "h:1"]) == 2
        assert main(["request", "--fleet", "2", "--socket", "/tmp/other.sock"]) == 2
        err = capsys.readouterr().err
        assert "cannot be combined" in err


class TestTraceLoadtestCommands:
    def test_trace_flags_parse(self):
        args = build_parser().parse_args(
            ["trace", "--arrival", "bursty", "--rate", "120", "--count", "50"]
        )
        assert args.arrival == "bursty" and args.rate == 120.0
        assert args.popularity == "zipf" and args.output == "-"

    def test_loadtest_flags_parse(self):
        args = build_parser().parse_args(
            ["loadtest", "--target", "fleet", "--shards", "3", "--slo-ms", "25"]
        )
        assert args.target == "fleet" and args.shards == 3 and args.slo_ms == 25.0
        assert args.mode == "auto" and args.backend == "process"

    def test_trace_stdout_is_deterministic(self, capsys):
        argv = ["trace", "--count", "8", "--pool", "3", "--seed", "42"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second
        header = json.loads(first.splitlines()[0])
        assert header["format"] == "repro-trace" and header["count"] == 8

    def test_trace_writes_file_loadtest_replays_it(self, tmp_path, capsys):
        trace_path = str(tmp_path / "t.jsonl")
        assert main([
            "trace", "--arrival", "closed", "--count", "10", "--pool", "3",
            "--n", "10", "--output", trace_path,
        ]) == 0
        capsys.readouterr()
        records_path = str(tmp_path / "records.jsonl")
        rc = main([
            "loadtest", "--trace", trace_path, "--backend", "serial",
            "--slo-ms", "500", "--records", records_path,
        ])
        out = capsys.readouterr().out
        assert rc == 0
        summary = json.loads(out)
        assert summary["requests"] == 10
        assert summary["dropped"] == 0 and summary["failed"] == 0
        assert summary["mode"] == "closed"
        assert summary["slo"]["threshold_ms"] == 500.0
        records = [json.loads(line) for line in open(records_path)]
        assert len(records) == 10 and all(r["ok"] for r in records)

    def test_loadtest_generates_when_no_trace_given(self, capsys):
        rc = main([
            "loadtest", "--arrival", "closed", "--count", "6", "--pool", "2",
            "--n", "8", "--backend", "serial",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        summary = json.loads(out)
        assert summary["requests"] == 6 and summary["target"] == "local"
