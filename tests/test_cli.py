"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.family == "chain" and args.method == "huang-banded"

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestSolveCommand:
    def test_dims_chain(self, capsys):
        rc = main(["solve", "--dims", "30,35,15,5,10,20,25", "--method", "huang"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "15125" in out
        assert "iters" in out

    def test_sequential_no_iters(self, capsys):
        rc = main(["solve", "--family", "generic", "--n", "8", "--method", "sequential"])
        out = capsys.readouterr().out
        assert rc == 0 and "value" in out and "iters" not in out

    @pytest.mark.parametrize("family", ["chain", "bst", "polygon", "generic"])
    def test_all_families(self, family, capsys):
        rc = main(["solve", "--family", family, "--n", "8", "--method", "huang-banded"])
        assert rc == 0
        assert "value" in capsys.readouterr().out

    def test_tree_flag(self, capsys):
        rc = main(["solve", "--dims", "2,3,4", "--method", "sequential", "--tree"])
        out = capsys.readouterr().out
        assert rc == 0 and "(0,2)" in out

    def test_trace_flag(self, capsys):
        rc = main(["solve", "--family", "chain", "--n", "6", "--method", "huang", "--trace"])
        out = capsys.readouterr().out
        assert rc == 0 and "w'(0,n)" in out

    def test_policy_option(self, capsys):
        rc = main(
            [
                "solve",
                "--family",
                "chain",
                "--n",
                "10",
                "--method",
                "huang-banded",
                "--policy",
                "w-stable",
            ]
        )
        assert rc == 0


class TestPebbleCommand:
    def test_zigzag(self, capsys):
        rc = main(["pebble", "--shape", "zigzag", "--n", "256"])
        out = capsys.readouterr().out
        assert rc == 0 and "22 moves" in out and "bound 32" in out

    def test_complete_with_trace(self, capsys):
        rc = main(["pebble", "--shape", "complete", "--n", "32", "--trace"])
        out = capsys.readouterr().out
        assert rc == 0 and "pebbling game" in out

    def test_random_rytter(self, capsys):
        rc = main(["pebble", "--shape", "random", "--n", "64", "--rule", "rytter"])
        assert rc == 0


class TestCostsCommand:
    def test_table(self, capsys):
        rc = main(["costs", "--n", "16", "64"])
        out = capsys.readouterr().out
        assert rc == 0 and "rytter" in out and "n = 64" in out


class TestAverageCommand:
    def test_runs(self, capsys):
        rc = main(["average", "--n-max", "64", "--samples", "5"])
        out = capsys.readouterr().out
        assert rc == 0 and "log2" in out
