"""Unit tests for trace rendering."""

from repro.core.huang import HuangSolver
from repro.pebbling import GameTree, PebbleGame
from repro.problems.generators import random_generic
from repro.viz import render_game_trace, render_iteration_trace


class TestIterationTrace:
    def test_renders_rows(self):
        p = random_generic(6, seed=0)
        out = HuangSolver(p).run(trace=True)
        text = render_iteration_trace(out.trace, title="run")
        lines = text.splitlines()
        assert lines[0] == "run"
        # title + header + separator + one row per iteration.
        assert len(lines) == 3 + out.iterations

    def test_inf_rendering(self):
        p = random_generic(8, seed=0)
        s = HuangSolver(p)
        out = s.run(trace=True)
        text = render_iteration_trace(out.trace)
        assert "inf" in text or "w'(0,n)" in text


class TestGameTrace:
    def test_renders(self):
        trace = PebbleGame(GameTree.vine(9)).run(trace=True)
        text = render_game_trace(trace)
        assert "pebbling game" in text
        assert str(trace.moves) in text.splitlines()[0]
