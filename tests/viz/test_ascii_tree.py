"""Unit tests for ASCII tree rendering."""

from repro.pebbling import GameTree
from repro.trees import complete_tree, zigzag_tree
from repro.viz import render_game_tree, render_tree


class TestRenderTree:
    def test_contains_all_nodes(self):
        t = complete_tree(4)
        out = render_tree(t)
        for node in t.nodes():
            assert f"({node.i},{node.j})" in out

    def test_split_annotation(self):
        out = render_tree(complete_tree(4))
        assert "k=2" in out

    def test_root_first_line(self):
        out = render_tree(zigzag_tree(5))
        assert out.splitlines()[0].startswith("(0,5)")

    def test_truncation(self):
        out = render_tree(complete_tree(64), max_nodes=10)
        assert "truncated" in out

    def test_branch_characters(self):
        out = render_tree(complete_tree(4))
        assert "├─" in out and "└─" in out


class TestRenderGameTree:
    def test_with_intervals(self):
        t = GameTree.from_parse_tree(complete_tree(4))
        out = render_game_tree(t)
        assert "(0,4)" in out

    def test_without_intervals(self):
        t = GameTree.vine(4)
        out = render_game_tree(t)
        assert "size=4" in out

    def test_truncation(self):
        out = render_game_tree(GameTree.vine(100), max_nodes=5)
        assert "truncated" in out
