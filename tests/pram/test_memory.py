"""Unit tests for the shared-memory substrate."""

import numpy as np
import pytest

from repro.errors import ProgramError
from repro.pram.memory import AccessJournal, SharedMemory


class TestAlloc:
    def test_alloc_and_shape(self):
        mem = SharedMemory()
        mem.alloc("a", (3, 4), fill=1.5)
        assert mem.shape("a") == (3, 4)
        assert mem.size("a") == 12
        assert np.all(mem.peek("a") == 1.5)

    def test_double_alloc_raises(self):
        mem = SharedMemory()
        mem.alloc("a", 2)
        with pytest.raises(ProgramError, match="already allocated"):
            mem.alloc("a", 2)

    def test_alloc_from_copies(self):
        mem = SharedMemory()
        src = np.arange(4.0)
        mem.alloc_from("a", src)
        src[0] = 99.0
        assert mem.peek("a")[0] == 0.0

    def test_free(self):
        mem = SharedMemory()
        mem.alloc("a", 2)
        mem.free("a")
        with pytest.raises(ProgramError, match="not allocated"):
            mem.free("a")

    def test_ravel_index(self):
        mem = SharedMemory()
        mem.alloc("a", (2, 3))
        assert mem.ravel_index("a", (1, 2)) == 5


class TestStepLifecycle:
    def test_reads_see_snapshot(self):
        mem = SharedMemory()
        mem.alloc("a", 2, fill=0.0)
        mem.begin_step()
        assert mem.read("a", 0) == 0.0
        mem.end_step({("a", 0): 7.0})
        assert mem.peek("a")[0] == 7.0
        # Next step sees the committed value.
        mem.begin_step()
        assert mem.read("a", 0) == 7.0
        mem.end_step({})

    def test_read_outside_step_raises(self):
        mem = SharedMemory()
        mem.alloc("a", 1)
        with pytest.raises(ProgramError, match="outside"):
            mem.read("a", 0)

    def test_nested_begin_raises(self):
        mem = SharedMemory()
        mem.begin_step()
        with pytest.raises(ProgramError):
            mem.begin_step()

    def test_end_without_begin_raises(self):
        mem = SharedMemory()
        with pytest.raises(ProgramError):
            mem.end_step({})

    def test_abort_discards_writes(self):
        mem = SharedMemory()
        mem.alloc("a", 1, fill=3.0)
        mem.begin_step()
        mem.abort_step()
        assert mem.peek("a")[0] == 3.0

    def test_out_of_range_read(self):
        mem = SharedMemory()
        mem.alloc("a", 2)
        mem.begin_step()
        with pytest.raises(ProgramError, match="out of range"):
            mem.read("a", 5)
        mem.abort_step()

    def test_out_of_range_write_on_commit(self):
        mem = SharedMemory()
        mem.alloc("a", 2)
        mem.begin_step()
        with pytest.raises(ProgramError, match="out of range"):
            mem.end_step({("a", 9): 1.0})

    def test_tuple_index_read(self):
        mem = SharedMemory()
        mem.alloc("a", (2, 2), fill=0.0)
        mem.begin_step()
        assert mem.read("a", (1, 1)) == 0.0
        mem.end_step({})

    def test_host_fill_blocked_during_step(self):
        mem = SharedMemory()
        mem.alloc("a", 2)
        mem.begin_step()
        with pytest.raises(ProgramError):
            mem.host_fill("a", 1.0)
        mem.abort_step()

    def test_host_write_reshapes(self):
        mem = SharedMemory()
        mem.alloc("a", (2, 2))
        mem.host_write("a", np.arange(4.0))
        assert mem.peek("a")[1, 1] == 3.0

    def test_peek_is_read_only(self):
        mem = SharedMemory()
        mem.alloc("a", 2)
        view = mem.peek("a")
        with pytest.raises(ValueError):
            view[0] = 1.0


class TestJournal:
    def test_counts(self):
        j = AccessJournal()
        j.record_read(("a", 0))
        j.record_read(("a", 0))
        j.record_read(("a", 1))
        j.record_write(("a", 2), 0, 1.0)
        j.record_write(("a", 2), 1, 2.0)
        assert j.read_count == 3
        assert j.write_count == 2
        assert j.concurrent_reads() == {("a", 0): 2}
        assert list(j.conflicting_writes()) == [("a", 2)]

    def test_clear(self):
        j = AccessJournal()
        j.record_read(("a", 0))
        j.clear()
        assert j.read_count == 0 and j.write_count == 0
