"""Unit tests for the PRAM machine: synchrony, conflicts, variants."""

import pytest

from repro.errors import ProgramError, WriteConflictError
from repro.pram.machine import PRAM, WritePolicy


def make_machine(policy="CREW", **kw):
    m = PRAM(policy=policy, **kw)
    m.memory.alloc("a", 8, fill=0.0)
    return m


class TestSynchrony:
    def test_reads_see_pre_step_state(self):
        """The classic parallel swap: both processors read old values."""
        m = make_machine()
        m.memory.host_write("a", [1, 2, 0, 0, 0, 0, 0, 0])
        m.step(
            [
                lambda p: p.write("a", 0, p.read("a", 1)),
                lambda p: p.write("a", 1, p.read("a", 0)),
            ]
        )
        assert m.memory.peek("a")[0] == 2
        assert m.memory.peek("a")[1] == 1

    def test_writes_not_visible_within_step(self):
        m = make_machine()

        def writer(p):
            p.write("a", 0, 5.0)

        def reader(p):
            # Runs "simultaneously": must still see 0.
            assert p.read("a", 0) == 0.0

        m.step([writer, reader])
        assert m.memory.peek("a")[0] == 5.0

    def test_failed_step_leaves_memory_unchanged(self):
        m = make_machine()

        def bad(p):
            p.write("a", 0, 1.0)
            raise RuntimeError("task crashed")

        with pytest.raises(RuntimeError):
            m.step([bad])
        assert m.memory.peek("a")[0] == 0.0


class TestConflicts:
    def test_crew_write_conflict(self):
        m = make_machine("CREW")
        with pytest.raises(WriteConflictError, match="processors \\[0, 1\\]"):
            m.step(
                [
                    lambda p: p.write("a", 3, 1.0),
                    lambda p: p.write("a", 3, 2.0),
                ]
            )
        # Aborted: nothing committed.
        assert m.memory.peek("a")[3] == 0.0

    def test_crew_concurrent_reads_allowed(self):
        m = make_machine("CREW")
        m.step([lambda p, i=i: p.read("a", 0) for i in range(6)])
        assert m.ledger.steps == 1

    def test_erew_read_conflict(self):
        m = make_machine("EREW")
        with pytest.raises(ProgramError, match="read conflict"):
            m.step([lambda p: p.read("a", 0), lambda p: p.read("a", 0)])

    def test_erew_disjoint_ok(self):
        m = make_machine("EREW")
        m.step([lambda p: p.read("a", 0), lambda p: p.read("a", 1)])

    def test_crcw_common_same_value(self):
        m = make_machine("CRCW-common")
        m.step([lambda p: p.write("a", 0, 4.0), lambda p: p.write("a", 0, 4.0)])
        assert m.memory.peek("a")[0] == 4.0

    def test_crcw_common_different_values(self):
        m = make_machine("CRCW-common")
        with pytest.raises(WriteConflictError, match="differing"):
            m.step([lambda p: p.write("a", 0, 4.0), lambda p: p.write("a", 0, 5.0)])

    def test_crcw_priority_lowest_pid_wins(self):
        m = make_machine("CRCW-priority")
        m.step(
            [
                lambda p: p.write("a", 0, 10.0),
                lambda p: p.write("a", 0, 20.0),
            ]
        )
        assert m.memory.peek("a")[0] == 10.0


class TestLedger:
    def test_step_accounting(self):
        m = make_machine()
        m.step([lambda p, i=i: p.write("a", i, 1.0) for i in range(4)])
        m.step([lambda p: p.read("a", 0)])
        s = m.snapshot_costs()
        assert s["steps"] == 2
        assert s["time"] == 2
        assert s["processors"] == 4
        assert s["work"] == 5
        assert s["writes"] == 4
        assert s["reads"] == 1

    def test_brent_time(self):
        m = make_machine(physical_processors=2)
        m.step([lambda p, i=i: p.read("a", i % 8) for i in range(8)])
        # ceil(8/2) = 4 time units for one step.
        assert m.ledger.time == 4
        assert m.ledger.steps == 1
        assert m.ledger.processors == 2

    def test_run_parallel_passes_index(self):
        m = make_machine()
        m.run_parallel(4, lambda i, p: p.write("a", i, float(i)))
        assert list(m.memory.peek("a")[:4]) == [0.0, 1.0, 2.0, 3.0]


class TestWritePolicy:
    def test_enum_from_string(self):
        assert WritePolicy("CREW") is WritePolicy.CREW
        assert WritePolicy("CRCW-common").allows_concurrent_writes

    def test_crew_properties(self):
        assert WritePolicy.CREW.allows_concurrent_reads
        assert not WritePolicy.CREW.allows_concurrent_writes
        assert not WritePolicy.EREW.allows_concurrent_reads
