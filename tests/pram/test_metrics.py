"""Unit tests for the cost ledger."""

import pytest

from repro.pram.metrics import CostLedger


class TestChargeStep:
    def test_basic_accumulation(self):
        led = CostLedger()
        led.charge_step(10)
        led.charge_step(3)
        assert led.steps == 2
        assert led.time == 2
        assert led.work == 13
        assert led.peak_processors == 10
        assert led.step_sizes == (10, 3)

    def test_brent_time(self):
        led = CostLedger(physical_processors=4)
        led.charge_step(10)  # ceil(10/4) = 3
        led.charge_step(0)  # empty step still 1
        assert led.time == 4
        assert led.processors == 4

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            CostLedger().charge_step(-1)

    def test_processors_without_physical(self):
        led = CostLedger()
        led.charge_step(7)
        assert led.processors == 7
        assert led.processor_time_product == 7


class TestMerge:
    def test_merge_adds(self):
        a = CostLedger()
        a.charge_step(5)
        a.charge_accesses(2, 1)
        b = CostLedger()
        b.charge_step(9)
        b.charge_accesses(4, 3)
        c = a.merge(b)
        assert c.steps == 2
        assert c.work == 14
        assert c.peak_processors == 9
        assert c.reads == 6 and c.writes == 4
        assert c.step_sizes == (5, 9)

    def test_merge_conflicting_physical(self):
        a = CostLedger(physical_processors=2)
        b = CostLedger(physical_processors=4)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_inherits_physical(self):
        a = CostLedger(physical_processors=2)
        b = CostLedger()
        assert a.merge(b).physical_processors == 2


class TestSummary:
    def test_keys(self):
        led = CostLedger()
        led.charge_step(1)
        s = led.summary()
        assert set(s) == {
            "time",
            "steps",
            "processors",
            "work",
            "reads",
            "writes",
            "processor_time_product",
        }
