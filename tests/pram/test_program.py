"""Unit tests for the parallel-for combinators."""

import pytest

from repro.pram.machine import PRAM
from repro.pram.program import ParallelFor, parallel_for


def fresh_machine(size=16):
    m = PRAM()
    m.memory.alloc("a", size, fill=0.0)
    return m


class TestParallelFor:
    def test_one_step_per_call(self):
        m = fresh_machine()
        used = parallel_for(m, range(5), lambda i, p: p.write("a", i, float(i)))
        assert used == 5
        assert m.ledger.steps == 1
        assert list(m.memory.peek("a")[:5]) == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_arbitrary_index_objects(self):
        m = fresh_machine()
        pairs = [(0, 1), (1, 2), (2, 3)]
        parallel_for(m, pairs, lambda ij, p: p.write("a", ij[0], float(ij[1])))
        assert list(m.memory.peek("a")[:3]) == [1.0, 2.0, 3.0]


class TestParallelForClass:
    def test_steps_needed(self):
        pf = ParallelFor(list(range(10)), lambda i, p: None, max_processors=4)
        assert pf.steps_needed() == 3
        assert ParallelFor([], lambda i, p: None).steps_needed() == 0

    def test_split_execution(self):
        m = fresh_machine()
        pf = ParallelFor(
            list(range(10)),
            lambda i, p: p.write("a", i, 1.0),
            max_processors=4,
        )
        steps = pf.run(m)
        assert steps == 3
        assert m.ledger.steps == 3
        assert m.ledger.peak_processors == 4
        assert m.memory.peek("a")[:10].sum() == 10.0

    def test_unbounded_single_step(self):
        m = fresh_machine()
        pf = ParallelFor(list(range(10)), lambda i, p: p.write("a", i, 1.0))
        assert pf.run(m) == 1
        assert m.ledger.peak_processors == 10

    def test_invalid_max_processors(self):
        with pytest.raises(ValueError):
            ParallelFor([1], lambda i, p: None, max_processors=0)

    def test_empty_runs_zero_steps(self):
        m = fresh_machine()
        assert ParallelFor([], lambda i, p: None).run(m) == 0
        assert m.ledger.steps == 0
