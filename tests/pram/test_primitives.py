"""Unit tests for the PRAM primitives (reductions, scan, broadcast)."""

import math

import numpy as np
import pytest

from repro.errors import ProgramError
from repro.pram.machine import PRAM
from repro.pram.primitives import (
    broadcast,
    prefix_scan,
    reduce_min,
    reduce_min_brent,
    tree_reduce,
)


def machine_with(data):
    m = PRAM()
    m.memory.alloc_from("x", np.asarray(data, dtype=float))
    m.memory.alloc("out", 4, fill=0.0)
    return m


class TestTreeReduce:
    @pytest.mark.parametrize("count", [1, 2, 3, 5, 8, 13])
    def test_min_matches_numpy(self, count, rng):
        data = rng.uniform(-5, 5, size=count)
        m = machine_with(data)
        reduce_min(m, "x", 0, count, ("out", 0))
        assert m.memory.peek("out")[0] == data.min()

    def test_sub_range(self, rng):
        data = rng.uniform(0, 1, size=10)
        m = machine_with(data)
        reduce_min(m, "x", 3, 4, ("out", 1))
        assert m.memory.peek("out")[1] == data[3:7].min()

    def test_empty_range_gives_identity(self):
        m = machine_with([1.0, 2.0])
        reduce_min(m, "x", 0, 0, ("out", 0))
        assert m.memory.peek("out")[0] == float("inf")

    def test_negative_count_raises(self):
        m = machine_with([1.0])
        with pytest.raises(ProgramError):
            tree_reduce(m, "x", 0, -1, ("out", 0))

    def test_input_region_untouched(self, rng):
        data = rng.uniform(0, 1, size=6)
        m = machine_with(data)
        reduce_min(m, "x", 0, 6, ("out", 0))
        assert np.array_equal(m.memory.peek("x"), data)

    def test_logarithmic_depth(self):
        """ceil(log2 m) + 2 super-steps (copy in, levels, copy out)."""
        count = 16
        m = machine_with(np.zeros(count))
        before = m.ledger.steps
        reduce_min(m, "x", 0, count, ("out", 0))
        depth = m.ledger.steps - before
        assert depth == math.ceil(math.log2(count)) + 2

    def test_other_op(self):
        m = machine_with([1.0, 2.0, 3.0, 4.0])
        tree_reduce(m, "x", 0, 4, ("out", 0), op=max, identity=-float("inf"))
        assert m.memory.peek("out")[0] == 4.0


class TestReduceMinBrent:
    @pytest.mark.parametrize("count", [1, 2, 7, 16, 33])
    def test_matches_numpy(self, count, rng):
        data = rng.uniform(-1, 1, size=count)
        m = machine_with(data)
        reduce_min_brent(m, "x", 0, count, ("out", 0))
        assert m.memory.peek("out")[0] == pytest.approx(data.min())

    def test_processor_bound(self):
        """Peak processors is O(m / log m): the Brent trade-off."""
        count = 64
        m = machine_with(np.zeros(count))
        reduce_min_brent(m, "x", 0, count, ("out", 0))
        block = math.ceil(math.log2(count))
        nblocks = math.ceil(count / block)
        assert m.ledger.peak_processors <= max(nblocks, count // 2 + 1)
        # Strictly fewer processors than the plain tree reduction uses in
        # its copy-in step.
        m2 = machine_with(np.zeros(count))
        reduce_min(m2, "x", 0, count, ("out", 0))
        assert m.ledger.peak_processors < m2.ledger.peak_processors

    def test_empty(self):
        m = machine_with([1.0])
        reduce_min_brent(m, "x", 0, 0, ("out", 0))
        assert m.memory.peek("out")[0] == float("inf")


class TestPrefixScan:
    @pytest.mark.parametrize("count", [1, 2, 5, 8, 9])
    def test_cumsum(self, count, rng):
        data = rng.uniform(0, 1, size=count)
        m = machine_with(data)
        m.memory.alloc("scanout", count, fill=0.0)
        prefix_scan(m, "x", 0, count, "scanout")
        assert np.allclose(m.memory.peek("scanout"), np.cumsum(data))

    def test_custom_op(self):
        m = machine_with([3.0, 1.0, 2.0])
        m.memory.alloc("scanout", 3, fill=0.0)
        prefix_scan(m, "x", 0, 3, "scanout", op=min)
        assert list(m.memory.peek("scanout")) == [3.0, 1.0, 1.0]

    def test_zero_count(self):
        m = machine_with([1.0])
        assert prefix_scan(m, "x", 0, 0, "x") == 0


class TestBroadcast:
    def test_crew_one_step(self):
        m = machine_with([42.0, 0, 0, 0])
        m.memory.alloc("dst", 6, fill=0.0)
        steps = broadcast(m, ("x", 0), "dst", 0, 6)
        assert steps == 1
        assert np.all(m.memory.peek("dst") == 42.0)

    def test_erew_rejects_broadcast(self):
        """The CREW/EREW separation, machine-checked."""
        m = PRAM(policy="EREW")
        m.memory.alloc_from("x", np.array([1.0]))
        m.memory.alloc("dst", 4, fill=0.0)
        with pytest.raises(ProgramError, match="read conflict"):
            broadcast(m, ("x", 0), "dst", 0, 4)


class TestBroadcastErew:
    def test_works_on_erew_machine(self):
        import math

        from repro.pram.primitives import broadcast_erew

        m = PRAM(policy="EREW")
        m.memory.alloc_from("x", np.array([7.0]))
        m.memory.alloc("dst", 13, fill=0.0)
        steps = broadcast_erew(m, ("x", 0), "dst", 0, 13)
        assert np.all(m.memory.peek("dst") == 7.0)
        assert steps == math.ceil(math.log2(13)) + 1

    def test_single_cell(self):
        from repro.pram.primitives import broadcast_erew

        m = PRAM(policy="EREW")
        m.memory.alloc_from("x", np.array([3.0]))
        m.memory.alloc("dst", 2, fill=0.0)
        assert broadcast_erew(m, ("x", 0), "dst", 0, 1) == 1
        assert m.memory.peek("dst")[0] == 3.0

    def test_zero_count(self):
        from repro.pram.primitives import broadcast_erew

        m = PRAM(policy="EREW")
        m.memory.alloc_from("x", np.array([3.0]))
        assert broadcast_erew(m, ("x", 0), "x", 0, 0) == 0

    @pytest.mark.parametrize("count", [2, 3, 8, 17])
    def test_matches_crew_broadcast(self, count):
        from repro.pram.primitives import broadcast, broadcast_erew

        m1 = PRAM(policy="CREW")
        m1.memory.alloc_from("x", np.array([1.5]))
        m1.memory.alloc("dst", count, fill=0.0)
        broadcast(m1, ("x", 0), "dst", 0, count)

        m2 = PRAM(policy="EREW")
        m2.memory.alloc_from("x", np.array([1.5]))
        m2.memory.alloc("dst", count, fill=0.0)
        broadcast_erew(m2, ("x", 0), "dst", 0, count)
        assert np.array_equal(m1.memory.peek("dst"), m2.memory.peek("dst"))
