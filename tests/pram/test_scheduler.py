"""Unit tests for Brent scheduling."""

import pytest

from repro.pram.scheduler import BrentScheduler, ScheduleCost


class TestStepTime:
    def test_ceiling(self):
        s = BrentScheduler(4)
        assert s.step_time(1) == 1
        assert s.step_time(4) == 1
        assert s.step_time(5) == 2
        assert s.step_time(8) == 2
        assert s.step_time(9) == 3

    def test_empty_step_costs_one(self):
        assert BrentScheduler(4).step_time(0) == 1

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            BrentScheduler(4).step_time(-1)

    def test_invalid_processor_count(self):
        with pytest.raises(ValueError):
            BrentScheduler(0)


class TestSchedule:
    def test_totals(self):
        s = BrentScheduler(3)
        cost = s.schedule([6, 1, 4])
        assert cost == ScheduleCost(time=2 + 1 + 2, work=11, processors=3)
        assert cost.processor_time_product == 15

    def test_meets_brent_bound(self):
        """Greedy per-step schedule never exceeds t + floor(w/p)."""
        for p in [1, 2, 3, 7, 16]:
            s = BrentScheduler(p)
            sizes = [13, 1, 0, 9, 27, 2]
            assert s.schedule(sizes).time <= s.brent_bound(sizes)

    def test_single_processor_time_equals_work_plus_empty(self):
        s = BrentScheduler(1)
        sizes = [3, 2, 0]
        # 3 + 2 + 1(empty step still advances) = 6
        assert s.schedule(sizes).time == 6


class TestProcessorsFor:
    def test_classic_corollary(self):
        # n work in log n time needs ~ n / log n processors.
        assert BrentScheduler.processors_for(1024, 10) == 103  # ceil(1024/10)

    def test_minimum_one(self):
        assert BrentScheduler.processors_for(0, 5) == 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            BrentScheduler.processors_for(10, 0)
        with pytest.raises(ValueError):
            BrentScheduler.processors_for(-1, 1)
