"""Bit-identical results from every backend (the CREW guarantee)."""

import numpy as np
import pytest

from repro.core.huang import HuangSolver
from repro.core.sequential import solve_sequential
from repro.parallel import ParallelHuangSolver
from repro.problems.generators import random_generic, random_matrix_chain


class TestParallelSolver:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_matches_serial_bitwise(self, backend):
        p = random_generic(10, seed=6)
        serial = HuangSolver(p)
        out_serial = serial.run()
        with ParallelHuangSolver(p, backend=backend, tiles=3) as par:
            out_par = par.run()
        # Bit-identical, not just close: same operations, same order
        # within each reduction tile.
        assert np.array_equal(
            np.nan_to_num(out_serial.w, posinf=-1),
            np.nan_to_num(out_par.w, posinf=-1),
        )
        assert out_serial.iterations == out_par.iterations

    def test_value_correct(self):
        p = random_matrix_chain(12, seed=4)
        with ParallelHuangSolver(p, backend="thread") as s:
            assert s.run().value == pytest.approx(solve_sequential(p).value)

    def test_tile_count_default(self):
        p = random_generic(6, seed=0)
        s = ParallelHuangSolver(p, backend="serial")
        assert s.tiles >= 2
        s.close()

    def test_many_tiles(self):
        p = random_generic(8, seed=1)
        with ParallelHuangSolver(p, backend="thread", tiles=9) as s:
            assert s.run().value == pytest.approx(solve_sequential(p).value)

    def test_context_manager(self):
        p = random_generic(5, seed=0)
        with ParallelHuangSolver(p, backend="thread") as s:
            s.run()
        # close() after exit is idempotent via backend shutdown semantics.
