"""Unit tests for the execution backends."""

import numpy as np
import pytest

from repro.errors import BackendError
from repro.parallel.backends import (
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    make_backend,
)


def _tile_sum(tile, *, data):
    lo, hi = tile
    return float(data[lo:hi].sum())


class TestFactory:
    def test_names(self):
        assert make_backend("serial").name == "serial"
        assert make_backend("thread", workers=2).name == "thread"

    def test_unknown(self):
        with pytest.raises(BackendError):
            make_backend("gpu")

    def test_invalid_workers(self):
        with pytest.raises(BackendError):
            ThreadBackend(workers=0)


@pytest.mark.parametrize("backend_name", ["serial", "thread", "process"])
class TestMapWithArrays:
    def test_results_in_order(self, backend_name):
        be = make_backend(backend_name, workers=2)
        data = np.arange(10.0)
        tiles = [(0, 3), (3, 7), (7, 10)]
        try:
            out = be.map_with_arrays(_tile_sum, tiles, {"data": data})
        finally:
            be.close()
        assert out == [3.0, 18.0, 24.0]

    def test_empty_tiles(self, backend_name):
        be = make_backend(backend_name, workers=2)
        try:
            assert be.map_with_arrays(_tile_sum, [], {"data": np.zeros(1)}) == []
        finally:
            be.close()


class TestProcessIsolation:
    def test_shared_globals_cleared(self):
        be = ProcessBackend(workers=2)
        data = np.arange(5.0)
        be.map_with_arrays(_tile_sum, [(0, 5)], {"data": data})
        from repro.parallel.backends import _SHARED

        assert _SHARED == {}
