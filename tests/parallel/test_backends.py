"""Unit tests for the execution backends."""

import numpy as np
import pytest

from repro.errors import BackendError
from repro.parallel.backends import (
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    make_backend,
)


def _tile_sum(tile, *, data):
    lo, hi = tile
    return float(data[lo:hi].sum())


class TestFactory:
    def test_names(self):
        assert make_backend("serial").name == "serial"
        assert make_backend("thread", workers=2).name == "thread"

    def test_unknown(self):
        with pytest.raises(BackendError):
            make_backend("gpu")

    def test_invalid_workers(self):
        with pytest.raises(BackendError):
            ThreadBackend(workers=0)


@pytest.mark.parametrize("backend_name", ["serial", "thread", "process"])
class TestMapWithArrays:
    def test_results_in_order(self, backend_name):
        be = make_backend(backend_name, workers=2)
        data = np.arange(10.0)
        tiles = [(0, 3), (3, 7), (7, 10)]
        try:
            out = be.map_with_arrays(_tile_sum, tiles, {"data": data})
        finally:
            be.close()
        assert out == [3.0, 18.0, 24.0]

    def test_empty_tiles(self, backend_name):
        be = make_backend(backend_name, workers=2)
        try:
            assert be.map_with_arrays(_tile_sum, [], {"data": np.zeros(1)}) == []
        finally:
            be.close()


class TestProcessIsolation:
    def test_shared_globals_cleared(self):
        be = ProcessBackend(workers=2)
        data = np.arange(5.0)
        be.map_with_arrays(_tile_sum, [(0, 5)], {"data": data})
        from repro.parallel.backends import _SHARED

        assert _SHARED == {}


class TestProcessBackendConcurrency:
    def test_concurrent_maps_do_not_cross_arrays(self):
        """Two threads fanning out process maps with different keyword
        sets must not interleave payloads through the fork-shared
        global (regression: _SHARED had no publish-and-fork lock)."""
        from concurrent.futures import ThreadPoolExecutor

        from repro.parallel.backends import ProcessBackend

        be = ProcessBackend(workers=2)
        a = np.arange(10.0)
        b = np.arange(10.0) * 2

        def run(arrays, key):
            return be.map_with_arrays(
                _tile_sum_keyed, [(0, 5), (5, 10)], {key: arrays}
            )

        with ThreadPoolExecutor(4) as ex:
            futures = [
                ex.submit(run, a, "alpha") if i % 2 == 0 else ex.submit(run, b, "beta")
                for i in range(8)
            ]
            results = [f.result() for f in futures]
        for i, res in enumerate(results):
            expected = [a[:5].sum(), a[5:].sum()] if i % 2 == 0 else [b[:5].sum(), b[5:].sum()]
            assert res == pytest.approx(expected)


def _tile_sum_keyed(tile, **arrays):
    """Sum over whichever single keyword array arrives (module-level so
    the process backend can pickle a reference)."""
    ((_, data),) = arrays.items()
    lo, hi = tile
    return float(data[lo:hi].sum())
