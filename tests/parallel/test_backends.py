"""Unit tests for the execution backends."""

import numpy as np
import pytest

from repro.errors import BackendError
from repro.parallel.backends import (
    BACKEND_NAMES,
    START_METHODS,
    ProcessBackend,
    ThreadBackend,
    make_backend,
)


def _tile_sum(tile, *, data):
    lo, hi = tile
    return float(data[lo:hi].sum())


class TestFactory:
    def test_names(self):
        assert make_backend("serial").name == "serial"
        assert make_backend("thread", workers=2).name == "thread"

    def test_unknown(self):
        with pytest.raises(BackendError):
            make_backend("gpu")

    def test_unknown_error_lists_valid_choices(self):
        with pytest.raises(BackendError) as err:
            make_backend("gpu")
        for name in BACKEND_NAMES:
            assert name in str(err.value)

    def test_invalid_workers(self):
        with pytest.raises(BackendError):
            ThreadBackend(workers=0)

    def test_unknown_start_method_lists_choices(self):
        with pytest.raises(BackendError) as err:
            make_backend("process", start_method="greenlet")
        for name in START_METHODS:
            assert name in str(err.value)

    def test_start_method_rejected_for_non_process(self):
        with pytest.raises(BackendError, match="process"):
            make_backend("thread", start_method="fork")

    def test_cow_transport_requires_fork(self):
        with pytest.raises(BackendError, match="fork"):
            ProcessBackend(workers=1, start_method="spawn", transport="cow")

    def test_unknown_transport(self):
        with pytest.raises(BackendError, match="shm"):
            ProcessBackend(workers=1, transport="carrier-pigeon")


class TestContextManager:
    @pytest.mark.parametrize("backend_name", ["serial", "thread", "process"])
    def test_with_block_closes(self, backend_name):
        data = np.arange(6.0)
        with make_backend(backend_name, workers=2) as be:
            out = be.map_with_arrays(_tile_sum, [(0, 6)], {"data": data})
        assert out == [15.0]

    def test_thread_pool_released_on_exit(self):
        with make_backend("thread", workers=1) as be:
            pass
        with pytest.raises(RuntimeError):
            be.map_with_arrays(_tile_sum, [(0, 1)], {"data": np.zeros(1)})


@pytest.mark.parametrize("backend_name", ["serial", "thread", "process"])
class TestMapWithArrays:
    def test_results_in_order(self, backend_name):
        be = make_backend(backend_name, workers=2)
        data = np.arange(10.0)
        tiles = [(0, 3), (3, 7), (7, 10)]
        try:
            out = be.map_with_arrays(_tile_sum, tiles, {"data": data})
        finally:
            be.close()
        assert out == [3.0, 18.0, 24.0]

    def test_empty_tiles(self, backend_name):
        be = make_backend(backend_name, workers=2)
        try:
            assert be.map_with_arrays(_tile_sum, [], {"data": np.zeros(1)}) == []
        finally:
            be.close()


class TestProcessIsolation:
    def test_shared_globals_cleared(self):
        with ProcessBackend(workers=2) as be:
            data = np.arange(5.0)
            be.map_with_arrays(_tile_sum, [(0, 5)], {"data": data})
        from repro.parallel.backends import _SHARED

        assert _SHARED == {}

    def test_cow_transport_leaves_no_arrays_after_close(self):
        """Regression: the fork-COW channel must not leave the last
        map's arrays referenced from the module global once the call —
        let alone close() — returns."""
        from repro.parallel.backends import _SHARED

        be = ProcessBackend(workers=2, start_method="fork", transport="cow")
        data = np.arange(5.0)
        out = be.map_with_arrays(_tile_sum, [(0, 5)], {"data": data})
        assert out == [10.0]
        assert _SHARED == {}
        be.close()
        assert _SHARED == {}

    def test_unpicklable_payload_falls_back_to_cow(self):
        """The shm transport cannot pickle a closure payload; under
        fork it must transparently ride the COW channel instead."""
        with ProcessBackend(workers=2, start_method="fork") as be:
            out = be.map_with_arrays(
                _call_hook, [0, 1], {"hook": lambda x: x + 41}
            )
        assert out == [41, 42]


class TestProcessBackendConcurrency:
    def test_concurrent_maps_do_not_cross_arrays(self):
        """Two threads fanning out process maps with different keyword
        sets must not interleave payloads through the fork-shared
        global (regression: _SHARED had no publish-and-fork lock)."""
        from concurrent.futures import ThreadPoolExecutor

        from repro.parallel.backends import ProcessBackend

        be = ProcessBackend(workers=2)
        a = np.arange(10.0)
        b = np.arange(10.0) * 2

        def run(arrays, key):
            return be.map_with_arrays(
                _tile_sum_keyed, [(0, 5), (5, 10)], {key: arrays}
            )

        with ThreadPoolExecutor(4) as ex:
            futures = [
                ex.submit(run, a, "alpha") if i % 2 == 0 else ex.submit(run, b, "beta")
                for i in range(8)
            ]
            results = [f.result() for f in futures]
        for i, res in enumerate(results):
            expected = [a[:5].sum(), a[5:].sum()] if i % 2 == 0 else [b[:5].sum(), b[5:].sum()]
            assert res == pytest.approx(expected)


def _tile_sum_keyed(tile, **arrays):
    """Sum over whichever single keyword array arrives (module-level so
    the process backend can pickle a reference)."""
    ((_, data),) = arrays.items()
    lo, hi = tile
    return float(data[lo:hi].sum())


def _call_hook(tile, *, hook):
    """Apply an (unpicklable) callable payload — exercises the COW
    fallback of the shm transport."""
    return hook(tile)
