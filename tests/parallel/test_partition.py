"""Unit tests for index-space partitioning."""

import pytest

from repro.parallel.partition import split_range


class TestSplitRange:
    def test_even_split(self):
        assert split_range(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_uneven_split_front_loads(self):
        assert split_range(7, 3) == [(0, 3), (3, 5), (5, 7)]

    def test_more_parts_than_items(self):
        assert split_range(2, 5) == [(0, 1), (1, 2)]

    def test_single_part(self):
        assert split_range(5, 1) == [(0, 5)]

    def test_zero_total(self):
        assert split_range(0, 3) == []

    def test_covers_everything_once(self):
        for total in range(0, 30):
            for parts in range(1, 8):
                chunks = split_range(total, parts)
                covered = [x for lo, hi in chunks for x in range(lo, hi)]
                assert covered == list(range(total))
                assert all(hi > lo for lo, hi in chunks)

    def test_validation(self):
        with pytest.raises(ValueError):
            split_range(-1, 2)
        with pytest.raises(ValueError):
            split_range(3, 0)
