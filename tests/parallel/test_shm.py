"""Shared-memory table store + persistent-pool lifecycle tests.

Pins the transport half of the plan/execute split: segments are created
once per solve and unlinked on close (no ``/dev/shm`` leaks, asserted
through the resource tracker's own stderr), workers attach to each
table exactly once per solve, the pool persists across sweeps, and the
spawn start method commits tables bitwise-equal to fork and serial.
"""

import os
import subprocess
import sys
from multiprocessing import shared_memory

import numpy as np
import pytest

import repro
from repro.core.huang import HuangSolver
from repro.core.compact import CompactBandedSolver
from repro.errors import BackendError
from repro.parallel import shm
from repro.parallel.backends import ProcessBackend
from repro.parallel.shm import TableStore, attach_blob, attach_view
from repro.problems.generators import random_generic, random_matrix_chain

_SRC_PATH = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def _canon(w):
    return np.nan_to_num(w, posinf=-1.0)


class TestTableStore:
    def test_full_allocates_and_fills(self):
        with TableStore() as store:
            w = store.full("w", (4, 4), np.inf)
            assert w.shape == (4, 4) and np.isinf(w).all()
            w[1, 2] = 7.0
            assert store.get("w")[1, 2] == 7.0

    def test_full_reuses_segment_on_same_shape(self):
        with TableStore() as store:
            a = store.full("w", (3, 3), 0.0)
            a[0, 0] = 5.0
            b = store.full("w", (3, 3), 1.0)
            assert b is a  # same parent view, refilled
            assert a[0, 0] == 1.0

    def test_full_replaces_segment_on_shape_change(self):
        with TableStore() as store:
            a = store.full("w", (3, 3), 0.0)
            before = store.epoch
            b = store.full("w", (5, 5), 0.0)
            assert b.shape == (5, 5) and b is not a
            assert store.epoch > before

    def test_put_copies(self):
        with TableStore() as store:
            src = np.arange(6.0).reshape(2, 3)
            arr = store.put("F", src)
            assert np.array_equal(arr, src)
            src[0, 0] = 99.0
            assert arr[0, 0] == 0.0  # a copy, not a view

    def test_meta_and_attach_roundtrip(self):
        with TableStore() as store:
            store.put("F", np.arange(8.0))
            view = attach_view(store.meta("F"))
            assert np.array_equal(view, np.arange(8.0))

    def test_meta_for_identity_only(self):
        with TableStore() as store:
            arr = store.put("w", np.zeros((4, 4)))
            assert store.meta_for(arr) == store.meta("w")
            assert store.meta_for(arr[:2]) is None  # views do not match
            assert store.meta_for(np.zeros((4, 4))) is None

    def test_blob_roundtrip(self):
        with TableStore() as store:
            meta = store.put_blob("payload", {"specs": [1, 2, 3]})
            assert attach_blob(meta) == {"specs": [1, 2, 3]}

    def test_close_unlinks_everything(self):
        store = TableStore()
        store.full("w", (8, 8), 0.0)
        store.put_blob("payload", b"x")
        names = store.segment_names()
        assert len(names) == 2
        store.close()
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_close_idempotent_and_allocation_refused_after(self):
        store = TableStore()
        store.full("w", (2, 2), 0.0)
        store.close()
        store.close()
        with pytest.raises(BackendError, match="closed"):
            store.full("x", (2, 2), 0.0)

    def test_manifest(self):
        with TableStore() as store:
            store.full("w", (2, 2), 0.0)
            store.full("pw", (2, 2, 2, 2), 0.0)
            manifest = store.manifest(["w", "pw"])
            assert set(manifest) == {"w", "pw"}
            assert manifest["w"][0] == "arr"


class TestPoolPersistence:
    def test_worker_pids_stable_across_sweeps(self):
        be = ProcessBackend(workers=2)
        try:
            pids_before = be.worker_pids()
            p = random_matrix_chain(8, seed=1)
            solver = HuangSolver(p, backend=be, tiles=3)
            try:
                solver.run()
                assert be.worker_pids() == pids_before
            finally:
                solver.release_store()
        finally:
            be.close()

    def test_workers_attach_each_segment_once_per_solve(self):
        """The attach-once contract: across all sweeps of a solve, no
        worker maps any table segment more than once."""
        be = ProcessBackend(workers=2)
        p = random_matrix_chain(10, seed=2)
        solver = HuangSolver(p, backend=be, tiles=4)
        try:
            solver.run()  # ~7 iterations x 3 sweeps x >=4 tiles
            reports = be.map_with_arrays(shm.probe, list(range(8)), {})
            assert any(rep["counts"] for rep in reports)
            for rep in reports:
                assert all(count == 1 for count in rep["counts"].values())
        finally:
            solver.release_store()
            be.close()

    def test_pool_revives_after_close(self):
        be = ProcessBackend(workers=1)
        try:
            assert be.map_with_arrays(shm.probe, [0], {})[0]["pid"] != os.getpid()
            be.close()
            assert be.map_with_arrays(shm.probe, [0], {})[0]["pid"] != os.getpid()
        finally:
            be.close()


class TestStartMethodEquivalence:
    @pytest.mark.parametrize("solver_cls,n", [(HuangSolver, 9), (CompactBandedSolver, 11)])
    def test_spawn_bitwise_equals_fork_and_serial(self, solver_cls, n):
        p = random_generic(n, seed=13)
        ref = solver_cls(p).run()
        for start_method in ("fork", "spawn"):
            with solver_cls(
                p, backend="process", workers=2, tiles=3, start_method=start_method
            ) as solver:
                out = solver.run()
            assert np.array_equal(_canon(out.w), _canon(ref.w)), start_method
            assert out.iterations == ref.iterations

    def test_solve_many_spawn_matches_serial(self):
        from repro.core import solve_many

        problems = [random_matrix_chain(7, seed=s) for s in range(3)]
        serial = solve_many(problems, method="huang-banded", backend="serial")
        spawned = solve_many(
            problems,
            method="huang-banded",
            backend="process",
            max_workers=2,
            start_method="spawn",
        )
        assert [r.value for r in spawned] == [r.value for r in serial]


class TestNoLeaks:
    def test_process_solve_leaves_no_tracker_complaints(self):
        """Full process-backend solve in a fresh interpreter: exit code
        0 and an stderr free of resource_tracker noise (no 'leaked
        shared_memory' warnings, no KeyError backtraces from double
        unregistration)."""
        code = (
            "from repro.core import solve\n"
            "from repro.problems.generators import random_matrix_chain\n"
            "r = solve(random_matrix_chain(8, seed=0), method='huang',"
            " backend='process', workers=2)\n"
            "print(r.value)\n"
        )
        env = dict(os.environ, PYTHONPATH=_SRC_PATH)
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env=env,
            timeout=180,
        )
        assert proc.returncode == 0, proc.stderr
        assert "leaked shared_memory" not in proc.stderr
        assert "resource_tracker" not in proc.stderr
        assert "Traceback" not in proc.stderr

    def test_solver_close_unlinks_store_segments(self):
        p = random_matrix_chain(6, seed=0)
        solver = HuangSolver(p, backend="process", workers=1, tiles=2)
        solver.run()
        store = solver._store
        assert store is not None
        names = store.segment_names()
        assert names  # w, pw, F + commit buffers
        solver.close()
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
