"""SolveService end to end: LocalClient, the unix-socket server, and
shutdown hygiene (no /dev/shm residue, no orphan workers)."""

import asyncio
import os
import threading
import time

import numpy as np
import pytest

from repro.core import solve
from repro.problems import BottleneckChainProblem, MatrixChainProblem
from repro.service import LocalClient, ServiceClient, SolveService, serve_unix

DIMS = [30, 35, 15, 5, 10, 20, 25]


def pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - still alive, other user
        return True
    return True


class TestLocalClient:
    def test_results_match_direct_solve(self):
        with LocalClient(backend="thread", workers=2, method="huang",
                         batch_window=0.01) as client:
            got = client.solve(MatrixChainProblem(DIMS))
            want = solve(MatrixChainProblem(DIMS), method="huang")
            assert got.value == want.value
            assert np.array_equal(got.w, want.w)

    def test_batch_coalesces_and_caches(self):
        with LocalClient(backend="thread", workers=2, method="huang",
                         batch_window=0.05, max_batch=16) as client:
            requests = [MatrixChainProblem(DIMS) for _ in range(4)] + [
                MatrixChainProblem([10, 20, 5, 30]),
                {"weights": [3, 9, 2, 7], "algebra": "minimax"},
            ]
            out = client.solve_batch(requests, with_source=True)
            sources = [source for _, source in out]
            # The four identical requests share one solve.
            assert sources.count("coalesced") == 3
            assert {r.value for r, _ in out[:4]} == {15125.0}
            # A repeat arriving later is a pure cache hit.
            _, source = client.solve(MatrixChainProblem(DIMS), with_source=True)
            assert source == "cache"
            stats = client.status()
            assert stats["scheduler"]["coalesced"] == 3
            assert stats["cache"]["hits"] == 1

    def test_spec_tuple_and_dict_requests(self):
        with LocalClient(backend="serial", method="sequential",
                         batch_window=0.0) as client:
            r1 = client.solve({"dims": [10, 20, 5, 30], "method": "huang-banded"})
            r2 = client.solve((BottleneckChainProblem([3, 9, 2, 7]), "huang"))
            assert r1.method == "huang-banded" and r1.value == 2500.0
            assert r2.algebra == "minimax"

    def test_per_item_failure_isolated(self):
        with LocalClient(backend="thread", workers=2, method="huang",
                         batch_window=0.02) as client:
            out = client.solve_batch([
                MatrixChainProblem([10, 20, 5, 30]),
                {"dims": [3, 7, 2], "algebra": "no_such_algebra"},
                MatrixChainProblem([3, 7, 2]),
            ])
            assert out[0].value == 2500.0
            assert isinstance(out[1], Exception)
            assert out[2].value == 42.0

    def test_uncacheable_policy_requests_still_solve(self):
        from repro.core.termination import WStable

        with LocalClient(backend="serial", method="huang",
                         batch_window=0.0) as client:
            result, source = client.solve(
                (MatrixChainProblem([10, 20, 5, 30]), "huang", {"policy": WStable()}),
                with_source=True,
            )
            assert result.value == 2500.0 and source == "batch"
            assert client.status()["cache"]["entries"] == 0


class TestShutdownHygiene:
    def test_process_backend_workers_die_and_shm_is_clean(self):
        client = LocalClient(backend="process", workers=2, method="huang",
                             batch_window=0.02)
        try:
            client.solve(MatrixChainProblem(DIMS))
            pids = client.service.backend.worker_pids()
            assert pids and all(pid_alive(p) for p in pids)
            segments = client.service.store.segment_names()
        finally:
            client.close()
        deadline = time.monotonic() + 5.0
        while any(pid_alive(p) for p in pids) and time.monotonic() < deadline:
            time.sleep(0.05)
        assert not any(pid_alive(p) for p in pids), "orphan pool workers"
        for name in segments:
            assert not os.path.exists(f"/dev/shm/{name}"), f"shm residue {name}"
        assert client.service.store.stats()["closed"]

    def test_close_is_idempotent(self):
        client = LocalClient(backend="serial", batch_window=0.0)
        client.close()
        client.close()


class TestUnixSocketServer:
    @pytest.fixture()
    def server(self, tmp_path):
        socket_path = str(tmp_path / "repro.sock")
        service = SolveService(
            method="huang", backend="thread", workers=2, batch_window=0.02
        )
        done = {}

        def _run():
            done["served"] = asyncio.run(serve_unix(service, socket_path))

        thread = threading.Thread(target=_run, daemon=True)
        thread.start()
        deadline = time.monotonic() + 10.0
        while not os.path.exists(socket_path):
            assert time.monotonic() < deadline, "server did not come up"
            time.sleep(0.02)
        yield socket_path, service
        if thread.is_alive():
            try:
                with ServiceClient(socket_path) as client:
                    client.shutdown()
            except OSError:
                pass
            thread.join(timeout=10.0)
        assert not thread.is_alive()

    def test_roundtrip_status_and_shutdown(self, server):
        socket_path, service = server
        with ServiceClient(socket_path) as client:
            records = client.request_many([
                {"dims": DIMS, "id_ignored": None},
                {"dims": DIMS},
                {"weights": [3, 9, 2, 7], "algebra": "minimax"},
                {"bogus": 1},
            ])
            assert [r["ok"] for r in records] == [True, True, True, False]
            assert records[0]["value"] == 15125.0
            assert records[1]["source"] in ("coalesced", "cache")
            assert "spec must contain" in records[3]["error"]
            status = client.status()
            assert status["requests"] == 4
            assert status["backend"]["backend"] == "thread"
            assert status["scheduler"]["requests"] == 3
        with ServiceClient(socket_path) as client:
            client.shutdown()
        deadline = time.monotonic() + 10.0
        while os.path.exists(socket_path) and time.monotonic() < deadline:
            time.sleep(0.02)
        assert not os.path.exists(socket_path), "socket not unlinked on shutdown"
        assert service.store.stats()["closed"]

    def test_max_requests_stops_server(self, tmp_path):
        socket_path = str(tmp_path / "capped.sock")
        service = SolveService(method="sequential", backend="serial",
                               batch_window=0.0)
        result = {}

        def _run():
            result["served"] = asyncio.run(
                serve_unix(service, socket_path, max_requests=2)
            )

        thread = threading.Thread(target=_run, daemon=True)
        thread.start()
        while not os.path.exists(socket_path):
            time.sleep(0.02)
        with ServiceClient(socket_path) as client:
            records = client.request_many([{"dims": [10, 20, 5, 30]},
                                           {"dims": [3, 7, 2]}])
        assert all(r["ok"] for r in records)
        thread.join(timeout=10.0)
        assert not thread.is_alive() and result["served"] == 2
