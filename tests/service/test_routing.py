"""Load-aware routing policies: ring memoization, bounded-load spill
semantics, p2c, and the degeneracy/dead-shard properties ISSUE 10 pins.

Everything here is offline (no shard processes): the policies are pure
functions of ``(key, ring, loads, alive)``, and
:func:`~repro.service.routing.simulate_routing` replays key sequences
deterministically — which is exactly why these invariants can be exact
assertions instead of bands.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.loadgen.analyze import imbalance
from repro.service.routing import (
    ROUTER_POLICIES,
    BoundedLoadPolicy,
    HashRing,
    PowerOfTwoPolicy,
    ShardLoad,
    make_policy,
    simulate_routing,
)

#: a reusable batch of distinct keys (deterministic, no RNG needed)
KEYS = [f"key-{i}".encode() for i in range(256)]

keys_strategy = st.lists(st.binary(min_size=1, max_size=16), min_size=1, max_size=64)


class TestHashRingMemoization:
    """The satellite fix: the sorted vnode arrays are merged once per
    burst of mutations, not once per call that follows one."""

    def test_routing_rebuilds_exactly_once(self):
        ring = HashRing(range(4))
        assert ring.rebuilds == 0  # construction only invalidates
        for key in KEYS:
            ring.route(key)
        assert ring.rebuilds == 1, "steady-state routing must not rebuild"

    def test_mutation_burst_costs_one_rebuild(self):
        ring = HashRing(range(2))
        ring.route(b"warm")
        assert ring.rebuilds == 1
        ring.add_shard(2)
        ring.add_shard(3)
        ring.remove_shard(0)
        for key in KEYS:
            ring.route(key)
        assert ring.rebuilds == 2, "N mutations then M routes is one merge"

    def test_successors_shares_the_memoized_arrays(self):
        ring = HashRing(range(4))
        list(ring.successors(b"a"))
        for key in KEYS:
            ring.route(key)
            list(ring.successors(key))
        assert ring.rebuilds == 1

    def test_mutated_ring_matches_fresh_construction(self):
        """add/remove must land on exactly the placement a fresh ring
        over the same shard set computes — the re-added index reclaims
        its old segment (the scale-up handoff contract)."""
        ring = HashRing(range(4))
        ring.remove_shard(2)
        assert [ring.route(k) for k in KEYS] == [
            HashRing([0, 1, 3]).route(k) for k in KEYS
        ]
        ring.add_shard(2)
        assert [ring.route(k) for k in KEYS] == [
            HashRing(range(4)).route(k) for k in KEYS
        ]

    def test_readd_reuses_cached_vnode_points(self):
        ring = HashRing(range(4))
        points_before = ring._point_cache[2]
        ring.remove_shard(2)
        ring.add_shard(2)
        assert ring._point_cache[2] is points_before

    def test_idempotent_add_does_not_invalidate(self):
        ring = HashRing(range(4))
        ring.route(b"warm")
        ring.add_shard(1)  # already present
        ring.route(b"again")
        assert ring.rebuilds == 1

    def test_membership_protocol(self):
        ring = HashRing(range(3))
        assert len(ring) == 3 and 2 in ring and 7 not in ring
        assert ring.shard_ids() == (0, 1, 2)

    def test_cannot_remove_last_or_unknown_shard(self):
        ring = HashRing([5])
        with pytest.raises(ReproError, match="last shard"):
            ring.remove_shard(5)
        with pytest.raises(ReproError, match="not on the ring"):
            ring.remove_shard(0)

    def test_successors_walk_is_complete_and_starts_at_the_owner(self):
        ring = HashRing(range(4))
        for key in KEYS[:32]:
            walk = list(ring.successors(key))
            assert walk[0] == ring.route(key)
            assert sorted(walk) == [0, 1, 2, 3]


class TestShardLoad:
    def test_value_blends_all_three_components(self):
        load = ShardLoad(assigned=10)
        load.inflight = 3
        load.observe_queue(10.0)
        # assigned 10 + inflight 3 + one EWMA step of 10 at alpha 0.3
        assert load.value() == pytest.approx(16.0)

    def test_observe_queue_is_an_ewma(self):
        load = ShardLoad()
        for _ in range(50):
            load.observe_queue(8.0)
        assert load.queue_ewma == pytest.approx(8.0, abs=1e-3)
        load.observe_queue(0.0)
        assert load.queue_ewma < 8.0

    def test_snapshot_is_json_shaped(self):
        snap = ShardLoad(assigned=2).snapshot()
        assert snap == {"assigned": 2, "inflight": 0, "queue_ewma": 0.0}


class TestBoundedDegeneratesToRing:
    """ISSUE 10 property: ``load_factor=inf`` makes the capacity test
    vacuous, so bounded routing IS ring routing, placement for
    placement — however skewed the key sequence."""

    @given(keys=keys_strategy)
    @settings(max_examples=40)
    def test_inf_factor_reproduces_ring_exactly(self, keys):
        ring = simulate_routing(keys, range(4), policy="ring")
        bounded = simulate_routing(
            keys, range(4), policy="bounded", load_factor=math.inf
        )
        assert bounded["counts"] == ring["counts"]
        assert bounded["tags"] == {"ring": len(keys)}
        assert bounded["load_factor"] is None  # JSON-able inf

    def test_finite_factor_beats_ring_on_a_hot_key(self):
        """One totally hot key: ring piles everything on the owner;
        bounded caps the owner at ~load_factor times the mean."""
        keys = [b"hot"] * 100
        ring = imbalance(simulate_routing(keys, range(4), policy="ring")["counts"])
        bounded = imbalance(
            simulate_routing(keys, range(4), policy="bounded", load_factor=1.25)[
                "counts"
            ]
        )
        assert ring["peak_to_mean"] == 4.0
        assert bounded["peak_to_mean"] <= 1.25 * 1.1  # capacity slack margin
        assert bounded["cv"] < ring["cv"]


class TestNeverRouteToDeadShards:
    """ISSUE 10 property: bounded and p2c skip dead candidates while
    any alive one exists; with the whole fleet dead they return the
    ring owner so the dispatch path's respawn machinery heals it."""

    @given(
        keys=keys_strategy,
        dead=st.sets(st.integers(0, 3), max_size=3),
        policy=st.sampled_from(["bounded", "p2c"]),
    )
    @settings(max_examples=60)
    def test_dead_shards_are_never_chosen(self, keys, dead, policy):
        ring = HashRing(range(4))
        loads = {sid: ShardLoad() for sid in range(4)}
        alive = set(range(4)) - dead
        chooser = make_policy(policy)
        for key in keys:
            sid, _ = chooser.choose(key, ring, loads, alive)
            loads[sid].assigned += 1
            assert sid in alive

    def test_fully_dead_fleet_falls_back_to_the_owner(self):
        ring = HashRing(range(4))
        loads = {sid: ShardLoad() for sid in range(4)}
        for policy in ("bounded", "p2c"):
            chooser = make_policy(policy)
            sid, tag = chooser.choose(b"key", ring, loads, set())
            assert sid == ring.route(b"key")
            assert tag == "ring"


class TestBoundedPolicySemantics:
    def test_overloaded_owner_spills_to_the_ring_successor(self):
        ring = HashRing(range(4))
        loads = {sid: ShardLoad() for sid in range(4)}
        key = b"spillme"
        owner = ring.route(key)
        successor = list(ring.successors(key))[1]
        loads[owner].assigned = 100  # far over any capacity
        policy = BoundedLoadPolicy(load_factor=1.25)
        sid, tag = policy.choose(key, ring, loads, set(range(4)))
        assert sid == successor and tag == "spill"

    def test_repeats_of_a_spilled_key_keep_their_affinity(self):
        ring = HashRing(range(4))
        loads = {sid: ShardLoad() for sid in range(4)}
        key = b"hotkey"
        owner = ring.route(key)
        loads[owner].assigned = 100
        policy = BoundedLoadPolicy(load_factor=1.25)
        first, tag1 = policy.choose(key, ring, loads, set(range(4)))
        loads[first].assigned += 1
        second, tag2 = policy.choose(key, ring, loads, set(range(4)))
        assert tag1 == "spill" and tag2 == "affinity"
        assert second == first, "the repeat must follow its L1 entry"

    def test_affinity_map_is_bounded(self):
        policy = BoundedLoadPolicy(load_factor=1.25, affinity_limit=8)
        ring = HashRing(range(4))
        loads = {sid: ShardLoad() for sid in range(4)}
        for i in range(64):
            policy.choose(f"k{i}".encode(), ring, loads, set(range(4)))
        assert len(policy._affinity) <= 8

    def test_sub_one_load_factor_rejected(self):
        with pytest.raises(ReproError, match="load_factor"):
            BoundedLoadPolicy(load_factor=0.9)
        with pytest.raises(ReproError, match="load_factor"):
            BoundedLoadPolicy(load_factor=float("nan"))


class TestPowerOfTwoChoices:
    def test_prefers_the_less_loaded_candidate(self):
        ring = HashRing(range(4))
        loads = {sid: ShardLoad() for sid in range(4)}
        key = b"p2c-key"
        owner, second = list(ring.successors(key))[:2]
        policy = PowerOfTwoPolicy()
        loads[owner].assigned = 10
        sid, tag = policy.choose(key, ring, loads, set(range(4)))
        assert sid == second and tag == "p2c"

    def test_ties_go_to_the_owner(self):
        ring = HashRing(range(4))
        loads = {sid: ShardLoad() for sid in range(4)}
        key = b"p2c-tie"
        sid, tag = PowerOfTwoPolicy().choose(key, ring, loads, set(range(4)))
        assert sid == ring.route(key) and tag == "ring"

    def test_candidates_are_deterministic_per_key(self):
        ring = HashRing(range(4))
        loads = {sid: ShardLoad() for sid in range(4)}
        policy = PowerOfTwoPolicy()
        picks = {
            policy.choose(b"stable", ring, loads, set(range(4)))[0]
            for _ in range(16)
        }
        assert len(picks) == 1  # equal loads: same winner every time


class TestMakePolicyAndSimulate:
    def test_registry_matches_the_cli_choices(self):
        assert ROUTER_POLICIES == ("ring", "bounded", "p2c")
        for name in ROUTER_POLICIES:
            assert make_policy(name).name == name

    def test_unknown_policy_rejected(self):
        with pytest.raises(ReproError, match="router policy"):
            make_policy("roulette")

    def test_simulation_conserves_requests(self):
        out = simulate_routing(KEYS, range(4), policy="bounded")
        assert sum(out["counts"]) == len(KEYS)
        assert sum(out["tags"].values()) == len(KEYS)
        assert out["policy"] == "bounded" and out["load_factor"] == 1.25
