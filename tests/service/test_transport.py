"""The shared service transport: addresses, framing, TCP serving, and
the unlink-on-every-exit-path guarantees of serve()."""

import asyncio
import json
import os
import threading
import time

import pytest

from repro.errors import ReproError
from repro.service import ServiceClient, SolveService, serve, serve_tcp
from repro.service.transport import (
    Address,
    connect,
    decode_record,
    encode_record,
    parse_address,
    start_line_server,
)


class TestParseAddress:
    def test_unix_path_passthrough(self):
        addr = parse_address("/tmp/x.sock")
        assert addr.kind == "unix" and addr.path == "/tmp/x.sock"
        assert addr.describe() == "/tmp/x.sock"

    def test_tcp_host_port(self):
        addr = parse_address("example.com:7466", tcp=True)
        assert addr.kind == "tcp"
        assert addr.host == "example.com" and addr.port == 7466
        assert addr.describe() == "example.com:7466"

    def test_tcp_port_only_defaults_to_loopback(self):
        assert parse_address(":7466", tcp=True).host == "127.0.0.1"
        assert parse_address("7466", tcp=True).port == 7466

    def test_tcp_ipv6_literal(self):
        addr = parse_address("[::1]:8000", tcp=True)
        assert addr.host == "::1" and addr.port == 8000

    @pytest.mark.parametrize("bad", ["no-port-here:", "x:y", "[::1]8000", ":70000"])
    def test_malformed_tcp_rejected(self, bad):
        with pytest.raises(ReproError):
            parse_address(bad, tcp=True)

    def test_address_instance_passthrough(self):
        addr = Address.tcp("h", 1)
        assert parse_address(addr, tcp=True) is addr


class TestFraming:
    def test_encode_decode_roundtrip(self):
        record = {"id": 3, "ok": True, "value": 2500.0}
        line = encode_record(record)
        assert line.endswith(b"\n")
        assert decode_record(line) == record

    def test_decode_rejects_non_objects(self):
        with pytest.raises(ValueError, match="JSON object"):
            decode_record(b"[1, 2]\n")
        with pytest.raises(ValueError):
            decode_record(b"not json")


class TestStaleUnixSocket:
    def test_stale_socket_file_is_reclaimed(self, tmp_path):
        """A dead server's leftover socket file must not block a new
        bind (the SIGKILLed-shard respawn path depends on this)."""
        import socket as socketmod

        path = str(tmp_path / "stale.sock")
        dead = socketmod.socket(socketmod.AF_UNIX, socketmod.SOCK_STREAM)
        dead.bind(path)
        dead.close()  # bound but never listening: connect will be refused
        assert os.path.exists(path)

        async def _bind_and_close():
            server, bound = await start_line_server(
                lambda r, w: None, Address.unix(path)
            )
            server.close()
            await server.wait_closed()
            return bound

        bound = asyncio.run(_bind_and_close())
        assert bound.path == path

    def test_live_server_is_not_clobbered(self, tmp_path):
        path = str(tmp_path / "live.sock")
        service = SolveService(method="sequential", backend="serial",
                               batch_window=0.0)
        ready = {}

        def _run():
            async def main():
                ev = asyncio.Event()
                task = asyncio.ensure_future(
                    serve(service, Address.unix(path), ready=ev)
                )
                await ev.wait()
                ready["loop"] = asyncio.get_running_loop()
                # Second bind on the same path must fail loudly while
                # the first server is alive.
                with pytest.raises(ReproError, match="live server"):
                    await start_line_server(lambda r, w: None, Address.unix(path))
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass

            asyncio.run(main())

        _run()


class TestServeCleanupPaths:
    def test_ready_failure_after_bind_unlinks_socket_and_closes_service(
        self, tmp_path
    ):
        """The PR 5 satellite fix: startup failing *after* the bind
        (here: the ready notification raising) must still unlink the
        socket file and close the service."""
        path = str(tmp_path / "fail.sock")
        service = SolveService(method="sequential", backend="serial",
                               batch_window=0.0)

        class ExplodingReady:
            def set(self):
                raise RuntimeError("startup interrupted")

        with pytest.raises(RuntimeError, match="startup interrupted"):
            asyncio.run(serve(service, Address.unix(path), ready=ExplodingReady()))
        assert not os.path.exists(path), "stale socket file left behind"
        assert service._closed, "service pools/store not released"

    def test_on_bound_failure_after_bind_unlinks_socket(self, tmp_path):
        path = str(tmp_path / "fail2.sock")
        service = SolveService(method="sequential", backend="serial",
                               batch_window=0.0)

        def boom(addr):
            raise OSError("no stdout to announce on")

        with pytest.raises(OSError):
            asyncio.run(serve(service, Address.unix(path), on_bound=boom))
        assert not os.path.exists(path)
        assert service._closed


class TestTcpServer:
    @pytest.fixture()
    def tcp_server(self):
        service = SolveService(
            method="huang", backend="thread", workers=2, batch_window=0.02
        )
        bound = {}
        got_addr = threading.Event()

        def _on_bound(addr):
            bound["addr"] = addr
            got_addr.set()

        done = {}

        def _run():
            done["served"] = asyncio.run(
                serve_tcp(service, "127.0.0.1", 0, on_bound=_on_bound)
            )

        thread = threading.Thread(target=_run, daemon=True)
        thread.start()
        assert got_addr.wait(10.0), "TCP server did not come up"
        yield bound["addr"], service
        if thread.is_alive():
            try:
                with ServiceClient(tcp=bound["addr"].describe()) as client:
                    client.shutdown()
            except OSError:
                pass
            thread.join(timeout=10.0)
        assert not thread.is_alive()

    def test_tcp_roundtrip_matches_unix_semantics(self, tcp_server):
        addr, service = tcp_server
        with ServiceClient(tcp=addr.describe()) as client:
            records = client.request_many([
                {"dims": [30, 35, 15, 5, 10, 20, 25]},
                {"dims": [30, 35, 15, 5, 10, 20, 25]},
                {"weights": [3, 9, 2, 7], "algebra": "minimax"},
            ])
            assert [r["ok"] for r in records] == [True, True, True]
            assert records[0]["value"] == 15125.0
            assert records[1]["source"] in ("coalesced", "cache")
            assert records[2]["value"] == 14.0
            status = client.status()
            assert status["backend"]["backend"] == "thread"

    def test_ephemeral_port_resolved(self, tcp_server):
        addr, _ = tcp_server
        assert addr.kind == "tcp" and addr.port > 0

    def test_shutdown_closes_service(self, tcp_server):
        addr, service = tcp_server
        with ServiceClient(tcp=addr.describe()) as client:
            client.shutdown()
        deadline = time.monotonic() + 10.0
        while not service._closed and time.monotonic() < deadline:
            time.sleep(0.02)
        assert service._closed


class TestServiceClientAddressing:
    def test_requires_exactly_one_address(self):
        with pytest.raises(ReproError, match="exactly one"):
            ServiceClient()
        with pytest.raises(ReproError, match="exactly one"):
            ServiceClient("/tmp/x.sock", tcp="127.0.0.1:1")

    def test_connect_refused_surfaces_as_oserror(self, tmp_path):
        with pytest.raises(OSError):
            ServiceClient(str(tmp_path / "absent.sock"))
        with pytest.raises(OSError):
            # Port 1 on loopback: nothing listens there.
            ServiceClient(tcp="127.0.0.1:1", timeout=2.0)


def test_sync_connect_tcp_and_unix(tmp_path):
    """transport.connect() serves both kinds behind one call."""
    path = str(tmp_path / "conn.sock")
    service = SolveService(method="sequential", backend="serial", batch_window=0.0)
    ready = threading.Event()
    done = {}

    def _run():
        async def main():
            ev = asyncio.Event()
            task = asyncio.ensure_future(
                serve(service, Address.unix(path), ready=ev, max_requests=1)
            )
            await ev.wait()
            ready.set()
            done["served"] = await task

        asyncio.run(main())

    thread = threading.Thread(target=_run, daemon=True)
    thread.start()
    assert ready.wait(10.0)
    sock = connect(Address.unix(path), timeout=10.0)
    try:
        sock.sendall(encode_record({"dims": [10, 20, 5, 30], "id": 9}))
        line = sock.makefile("r").readline()
    finally:
        sock.close()
    record = json.loads(line)
    assert record["id"] == 9 and record["value"] == 2500.0
    thread.join(timeout=10.0)
    assert done["served"] == 1
