"""CoalescingScheduler: dedup, batching, deadlines, error isolation."""

import asyncio
import threading

import numpy as np
import pytest

from repro.core.api import SolveResult
from repro.problems import MatrixChainProblem
from repro.service import CoalescingScheduler, ResultCache
from repro.service.scheduler import ServiceClosedError


class RecordingRunner:
    """Runner double: records every batch, answers with stub results."""

    def __init__(self, fail_on=None):
        self.batches = []
        self.fail_on = fail_on  # problem n values that should "fail"

    def __call__(self, items):
        self.batches.append(items)
        out = []
        for problem, method, kwargs in items:
            if self.fail_on and problem.n in self.fail_on:
                out.append(ValueError(f"boom n={problem.n}"))
            else:
                out.append(
                    SolveResult(
                        method=method,
                        value=float(problem.n),
                        w=np.zeros((problem.n + 1, problem.n + 1)),
                    )
                )
        return out


def chain(*dims):
    return MatrixChainProblem(list(dims))


def run(coro):
    return asyncio.run(coro)


class TestCoalescing:
    def test_duplicates_share_one_solve(self):
        runner = RecordingRunner()

        async def main():
            sched = CoalescingScheduler(runner, batch_window=0.05, max_batch=16)
            p = chain(10, 20, 5, 30)
            outcomes = await asyncio.gather(
                *(sched.submit(p, "huang", {}) for _ in range(5))
            )
            await sched.close()
            return outcomes

        outcomes = run(main())
        assert len(runner.batches) == 1 and len(runner.batches[0]) == 1
        sources = sorted(source for _, source in outcomes)
        assert sources == ["batch"] + ["coalesced"] * 4
        assert {result.value for result, _ in outcomes} == {3.0}

    def test_distinct_requests_batch_together(self):
        runner = RecordingRunner()

        async def main():
            sched = CoalescingScheduler(runner, batch_window=0.05, max_batch=16)
            problems = [chain(*(10 + i, 20, 5, 30)) for i in range(4)]
            await asyncio.gather(*(sched.submit(p, "huang", {}) for p in problems))
            await sched.close()

        run(main())
        assert len(runner.batches) == 1 and len(runner.batches[0]) == 4

    def test_max_batch_flushes_early(self):
        runner = RecordingRunner()

        async def main():
            # A window long enough that only the size bound can flush.
            sched = CoalescingScheduler(runner, batch_window=5.0, max_batch=2)
            problems = [chain(10 + i, 20, 5, 30) for i in range(4)]
            await asyncio.gather(*(sched.submit(p, "huang", {}) for p in problems))
            await sched.close()

        run(main())
        assert all(len(batch) <= 2 for batch in runner.batches)
        assert sum(len(b) for b in runner.batches) == 4

    def test_deadline_flushes_partial_batch(self):
        runner = RecordingRunner()

        async def main():
            sched = CoalescingScheduler(runner, batch_window=0.01, max_batch=64)
            result, source = await sched.submit(chain(10, 20, 5), "huang", {})
            await sched.close()
            return result, source

        result, source = run(main())
        assert source == "batch" and result.value == 2.0


class TestExecutingJoin:
    def test_late_duplicate_joins_executing_batch(self):
        """The coalescing gap: a duplicate arriving after its twin was
        detached into the in-flight batch must join that solve, not
        re-solve from scratch."""
        release = threading.Event()
        batches = []

        def runner(items):
            batches.append(items)
            assert release.wait(timeout=5.0), "test never released the runner"
            return [
                SolveResult(
                    method=method,
                    value=float(problem.n),
                    w=np.zeros((problem.n + 1, problem.n + 1)),
                )
                for problem, method, _ in items
            ]

        async def main():
            sched = CoalescingScheduler(runner, batch_window=0.0, max_batch=4)
            p = chain(10, 20, 5, 30)
            first = asyncio.ensure_future(sched.submit(p, "huang", {}))
            while sched.stats()["executing"] == 0:  # batch now in flight
                await asyncio.sleep(0.001)
            late = asyncio.ensure_future(sched.submit(p, "huang", {}))
            await asyncio.sleep(0.02)  # the duplicate reaches the join
            stats_mid = sched.stats()
            release.set()
            outcomes = await asyncio.gather(first, late)
            await sched.close()
            return outcomes, stats_mid

        (first, late), stats_mid = run(main())
        assert len(batches) == 1 and len(batches[0]) == 1  # one solve total
        assert first[1] == "batch" and late[1] == "coalesced"
        assert first[0].value == late[0].value
        assert stats_mid["executing"] == 1 and stats_mid["pending"] == 0

    def test_duplicate_after_results_land_is_a_fresh_solve(self):
        """Once a batch's results land the executing index is empty: a
        later duplicate without a cache re-solves (no stale joins)."""
        runner = RecordingRunner()

        async def main():
            sched = CoalescingScheduler(runner, batch_window=0.0, max_batch=4)
            p = chain(10, 20, 5, 30)
            _, s1 = await sched.submit(p, "huang", {})
            _, s2 = await sched.submit(p, "huang", {})
            await sched.close()
            return s1, s2

        assert run(main()) == ("batch", "batch")
        assert len(runner.batches) == 2


class TestDeltaRide:
    def test_delta_candidate_rides_batch(self):
        """A miss whose cached sibling differs only in a weight suffix
        is answered by the in-batch delta probe, not the cold runner."""
        runner = RecordingRunner()
        cache = ResultCache()

        async def main():
            sched = CoalescingScheduler(
                runner, batch_window=0.0, max_batch=4, cache=cache
            )
            _, s1 = await sched.submit(chain(10, 20, 5, 30), "huang", {})
            _, s2 = await sched.submit(chain(10, 20, 5, 31), "huang", {})
            _, s3 = await sched.submit(chain(10, 20, 5, 31), "huang", {})
            stats = sched.stats()
            await sched.close()
            return (s1, s2, s3), stats

        (s1, s2, s3), stats = run(main())
        assert (s1, s2, s3) == ("batch", "delta", "cache")
        assert stats["delta_hits"] == 1 and stats["cache_hits"] == 1
        # only the parent went through the runner; the sibling did not
        assert sum(len(b) for b in runner.batches) == 1

    def test_delta_result_is_recached(self):
        runner = RecordingRunner()
        cache = ResultCache()

        async def main():
            sched = CoalescingScheduler(
                runner, batch_window=0.0, max_batch=4, cache=cache
            )
            await sched.submit(chain(10, 20, 5, 30), "huang", {})
            await sched.submit(chain(10, 20, 5, 31), "huang", {})
            await sched.close()

        run(main())
        assert cache.stats()["entries"] == 2


class TestCacheFront:
    def test_second_wave_hits_cache(self):
        runner = RecordingRunner()
        cache = ResultCache()

        async def main():
            sched = CoalescingScheduler(
                runner, batch_window=0.01, max_batch=8, cache=cache
            )
            p = chain(10, 20, 5, 30)
            _, first = await sched.submit(p, "huang", {})
            _, second = await sched.submit(p, "huang", {})
            await sched.close()
            return first, second

        first, second = run(main())
        assert (first, second) == ("batch", "cache")
        assert len(runner.batches) == 1
        assert cache.stats()["hits"] == 1 and cache.stats()["entries"] == 1


class TestFailureAndLifecycle:
    def test_per_item_errors_stay_isolated(self):
        runner = RecordingRunner(fail_on={4})

        async def main():
            sched = CoalescingScheduler(runner, batch_window=0.05, max_batch=16)
            good = sched.submit(chain(10, 20, 5, 30), "huang", {})       # n=3
            bad = sched.submit(chain(10, 20, 5, 30, 7), "huang", {})     # n=4
            results = await asyncio.gather(good, bad, return_exceptions=True)
            await sched.close()
            return results

        ok, err = run(main())
        assert ok[0].value == 3.0
        assert isinstance(err, ValueError) and "boom" in str(err)

    def test_runner_crash_fails_every_waiter(self):
        def exploding(items):
            raise RuntimeError("pool died")

        async def main():
            sched = CoalescingScheduler(exploding, batch_window=0.01, max_batch=8)
            results = await asyncio.gather(
                sched.submit(chain(10, 20, 5), "huang", {}),
                sched.submit(chain(10, 20, 5, 30), "huang", {}),
                return_exceptions=True,
            )
            await sched.close()
            return results

        results = run(main())
        assert all(isinstance(r, RuntimeError) for r in results)

    def test_submit_after_close_raises(self):
        runner = RecordingRunner()

        async def main():
            sched = CoalescingScheduler(runner, batch_window=0.01)
            await sched.close()
            with pytest.raises(ServiceClosedError):
                await sched.submit(chain(10, 20, 5), "huang", {})

        run(main())

    def test_stats_shape(self):
        runner = RecordingRunner()

        async def main():
            sched = CoalescingScheduler(runner, batch_window=0.02, max_batch=8)
            p = chain(10, 20, 5, 30)
            await asyncio.gather(*(sched.submit(p, "huang", {}) for _ in range(3)))
            await sched.close()
            return sched.stats()

        stats = run(main())
        assert stats["requests"] == 3
        assert stats["coalesced"] == 2
        assert stats["batches"] == 1 and stats["batch_items"] == 1
        # pending and executing report separately (executing entries
        # used to be folded into neither while a batch ran)
        assert stats["pending"] == 0
        assert stats["executing"] == 0
        assert stats["queue_depth"] == 0
        assert stats["delta_hits"] == 0


class TestQueueDepth:
    def test_queue_depth_counts_pending_plus_executing(self):
        """The backlog gauge a load monitor polls: entries detached
        into the in-flight batch AND entries still waiting both count,
        and the gauge returns to zero once everything resolves."""
        release = threading.Event()

        def runner(items):
            assert release.wait(timeout=5.0), "test never released the runner"
            return [
                SolveResult(
                    method=method,
                    value=float(problem.n),
                    w=np.zeros((problem.n + 1, problem.n + 1)),
                )
                for problem, method, _ in items
            ]

        async def main():
            sched = CoalescingScheduler(runner, batch_window=0.0, max_batch=1)
            first = asyncio.ensure_future(sched.submit(chain(10, 20, 5), "huang", {}))
            while sched.stats()["executing"] == 0:  # first batch in flight
                await asyncio.sleep(0.001)
            second = asyncio.ensure_future(sched.submit(chain(3, 7, 2), "huang", {}))
            await asyncio.sleep(0.005)  # second lands in pending
            mid = sched.stats()
            release.set()
            await asyncio.gather(first, second)
            settled = sched.stats()
            await sched.close()
            return mid, settled

        mid, settled = run(main())
        assert mid["pending"] == 1 and mid["executing"] == 1
        assert mid["queue_depth"] == 2
        assert settled["queue_depth"] == 0

    def test_queue_depth_ewma_smooths_the_gauge(self):
        """The EWMA companion the load-aware router consumes: it starts
        at zero, rises after submissions have passed through the queue,
        and — being smoothed — does NOT snap back to zero the instant
        the instantaneous gauge does."""
        runner = RecordingRunner()

        async def main():
            sched = CoalescingScheduler(runner, batch_window=0.005, max_batch=8)
            assert sched.stats()["queue_depth_ewma"] == 0.0
            await asyncio.gather(
                *(sched.submit(chain(10, 20, 5, n), "huang", {}) for n in range(1, 5))
            )
            await sched.close()
            return sched.stats()

        stats = run(main())
        assert stats["queue_depth"] == 0  # instantaneous gauge is settled
        assert stats["queue_depth_ewma"] > 0.0  # the smoothed one remembers
