"""The sharded solve fleet: routing, aggregation, shard-death recovery
and shutdown hygiene.

These tests spawn real shard processes (each a full ``repro serve``),
so the fleet is kept small (2 shards) and the shards cheap (serial
backend, sequential default method): what is under test is the router,
not the solvers.
"""

import os
import signal
import threading
import time

import pytest

from repro.core import solve
from repro.errors import ReproError
from repro.problems import MatrixChainProblem
from repro.problems.specs import route_key_from_spec
from repro.service.fleet import FleetRouter, HashRing

FLEET_KWARGS = dict(backend="serial", method="sequential", batch_window=0.002)


def pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    return True


@pytest.fixture(scope="module")
def fleet():
    """One two-shard fleet shared by the read-only tests (spawning
    shards costs ~1s each; the destructive tests build their own)."""
    with FleetRouter(2, **FLEET_KWARGS) as router:
        yield router


class TestHashRing:
    def test_deterministic_across_instances(self):
        keys = [bytes([i, 2 * i % 251]) for i in range(64)]
        a, b = HashRing(range(4)), HashRing(range(4))
        assert [a.route(k) for k in keys] == [b.route(k) for k in keys]

    def test_spreads_keys_over_all_shards(self):
        ring = HashRing(range(4))
        owners = {ring.route(os.urandom(16)) for _ in range(256)}
        assert owners == {0, 1, 2, 3}

    def test_consistency_under_shard_set_growth(self):
        """Growing the fleet only moves keys *to* the new shard — keys
        that stay on old shards keep their placement (the consistent-
        hashing property that makes resharding incremental)."""
        keys = [os.urandom(16) for _ in range(512)]
        small, big = HashRing(range(3)), HashRing(range(4))
        moved = 0
        for key in keys:
            before, after = small.route(key), big.route(key)
            if after != before:
                assert after == 3, "key moved between two surviving shards"
                moved += 1
        assert 0 < moved < len(keys) // 2

    def test_empty_ring_rejected(self):
        with pytest.raises(ReproError):
            HashRing([])


class TestRouting:
    def test_same_request_always_routes_to_same_shard(self, fleet):
        spec = {"dims": [10, 20, 5, 30], "method": "huang"}
        shards = {fleet.route(dict(spec)) for _ in range(10)}
        assert len(shards) == 1

    def test_route_ignores_the_client_id(self, fleet):
        spec = {"dims": [10, 20, 5, 30]}
        assert fleet.route({**spec, "id": 1}) == fleet.route({**spec, "id": 999})

    def test_distinct_requests_use_both_shards(self, fleet):
        shards = {
            fleet.route({"family": "chain", "n": 12, "seed": s}) for s in range(32)
        }
        assert shards == {0, 1}

    def test_route_key_prefers_instance_key(self):
        """Two spec spellings of the same request route identically
        (instance key, not JSON text)."""
        a = route_key_from_spec({"dims": [10, 20, 5, 30]})
        b = route_key_from_spec({"dims": [10.0, 20.0, 5.0, 30.0]})
        assert a == b

    def test_malformed_spec_still_routes_deterministically(self):
        a = route_key_from_spec({"bogus": 1})
        b = route_key_from_spec({"bogus": 1})
        assert a == b


class TestFleetRequests:
    def test_results_match_direct_solve(self, fleet):
        records = fleet.request_many([
            {"dims": [30, 35, 15, 5, 10, 20, 25], "method": "huang-banded"},
            {"dims": [3, 7, 2]},
            {"weights": [3, 9, 2, 7], "algebra": "minimax"},
        ])
        want = solve(
            MatrixChainProblem([30, 35, 15, 5, 10, 20, 25]), method="huang-banded"
        )
        assert [r["ok"] for r in records] == [True, True, True]
        assert records[0]["value"] == want.value == 15125.0
        assert records[1]["value"] == 42.0
        assert records[2]["value"] == 14.0
        assert records[2]["algebra"] == "minimax"

    def test_records_in_submission_order_with_ids(self, fleet):
        specs = [
            {"family": "chain", "n": 8, "seed": s, "id": f"req-{s}"}
            for s in range(8)
        ]
        records = fleet.request_many(specs)
        assert [r["id"] for r in records] == [f"req-{s}" for s in range(8)]

    def test_bad_specs_error_in_place(self, fleet):
        records = fleet.request_many([
            {"dims": [10, 20, 5, 30]},
            {"bogus": 1},
            {"dims": [3, 7, 2]},
        ])
        assert [r["ok"] for r in records] == [True, False, True]
        assert "spec must contain" in records[1]["error"]

    def test_duplicates_hit_the_same_shards_cache(self, fleet):
        spec = {"dims": [12, 34, 56, 7], "method": "huang"}
        first = fleet.request(dict(spec))
        second = fleet.request(dict(spec))
        assert first["ok"] and second["ok"]
        assert second["source"] == "cache"

    def test_status_aggregates_across_shards(self, fleet):
        status = fleet.status()
        assert status["shards"] == 2 and status["alive"] == 2
        assert status["totals"]["requests"] >= status["router"]["requests"] - 1
        assert len(status["per_shard"]) == 2
        assert all(s["alive"] for s in status["per_shard"])
        assert 0.0 <= status["totals"]["cache_hit_rate"] <= 1.0

    def test_records_stamp_their_answering_shard(self, fleet):
        """Every response carries the shard that answered it, matching
        the router's own placement — the attribution the load harness
        records without re-deriving routes client-side."""
        specs = [{"family": "chain", "n": 10, "seed": s} for s in range(8)]
        records = fleet.request_many([dict(s) for s in specs])
        assert all(r["ok"] for r in records)
        for spec, record in zip(specs, records):
            assert record["shard"] == fleet.route(dict(spec))
        assert {r["shard"] for r in records} == {0, 1}

    def test_status_totals_include_queue_depth(self, fleet):
        """The aggregate backlog gauge: per-shard scheduler queue
        depths sum into the fleet totals, and an idle fleet reads 0."""
        status = fleet.status()
        assert status["totals"]["queue_depth"] == 0
        for shard in status["per_shard"]:
            assert shard["status"]["scheduler"]["queue_depth"] == 0


class TestShardDeathRecovery:
    """The PR 5 satellite: kill a shard mid-batch; the router must
    respawn it, re-dispatch at most once, and drop nothing."""

    def test_kill_mid_batch_no_request_dropped(self):
        specs = [
            {"family": "chain", "n": 40 + (i % 4) * 8, "seed": i} for i in range(24)
        ]
        with FleetRouter(2, **FLEET_KWARGS) as router:
            victim = router.shard_pids()[0]
            out = {}

            def _run():
                out["records"] = router.request_many(specs)

            worker = threading.Thread(target=_run)
            worker.start()
            time.sleep(0.1)  # let the batch get in flight
            os.kill(victim, signal.SIGKILL)
            worker.join(timeout=120.0)
            assert not worker.is_alive(), "request_many hung after the kill"

            records = out["records"]
            # Zero silent drops: every accepted request has a record,
            # in order, each either solved or an explicit error.
            assert len(records) == len(specs)
            assert all(r is not None for r in records)
            for record in records:
                assert record.get("ok") or record.get("error")

            status = router.status()
            assert status["router"]["respawns"] >= 1, "dead shard not respawned"
            assert status["alive"] == 2
            # At-most-once re-dispatch: the router never sends one
            # request more than twice, so the re-dispatch count is
            # bounded by the batch size.
            assert 1 <= status["router"]["redispatched"] <= len(specs)

            # The respawned shard serves fresh requests.
            healed = router.request({"dims": [10, 20, 5, 30]})
            assert healed["ok"] and healed["value"] == 2500.0

    def test_kill_between_batches_respawns_on_next_use(self):
        with FleetRouter(2, **FLEET_KWARGS) as router:
            warm = router.request_many(
                [{"family": "chain", "n": 10, "seed": s} for s in range(6)]
            )
            assert all(r["ok"] for r in warm)
            victim = router.shard_pids()[1]
            os.kill(victim, signal.SIGKILL)
            deadline = time.monotonic() + 10.0
            while pid_alive(victim) and time.monotonic() < deadline:
                time.sleep(0.02)
            records = router.request_many(
                [{"family": "chain", "n": 10, "seed": s} for s in range(6)]
            )
            assert all(r["ok"] for r in records)
            assert router.status()["router"]["respawns"] == 1
            new_pid = router.shard_pids()[1]
            assert new_pid != victim and pid_alive(new_pid)


class TestShutdownHygiene:
    def test_close_kills_shards_and_removes_state(self):
        shm_before = set(os.listdir("/dev/shm")) if os.path.isdir("/dev/shm") else set()
        router = FleetRouter(2, **FLEET_KWARGS)
        router.start()
        pids = router.shard_pids()
        state_dir = router.state_dir
        sockets = [shard.socket_path for shard in router._shards.values()]
        assert all(pid_alive(p) for p in pids)
        assert all(os.path.exists(s) for s in sockets)
        router.close()
        deadline = time.monotonic() + 10.0
        while any(pid_alive(p) for p in pids) and time.monotonic() < deadline:
            time.sleep(0.05)
        assert not any(pid_alive(p) for p in pids), "orphan shard processes"
        assert not any(os.path.exists(s) for s in sockets), "leaked sockets"
        assert not os.path.exists(state_dir), "state dir left behind"
        if os.path.isdir("/dev/shm"):
            shm_after = set(os.listdir("/dev/shm"))
            assert not (shm_after - shm_before), "/dev/shm residue"

    def test_close_is_idempotent_and_blocks_further_requests(self):
        router = FleetRouter(1, **FLEET_KWARGS)
        router.start()
        router.close()
        router.close()
        with pytest.raises(ReproError, match="closed"):
            router.request({"dims": [3, 7, 2]})

    def test_caller_owned_state_dir_is_kept(self, tmp_path):
        state = tmp_path / "fleet-state"
        router = FleetRouter(1, state_dir=str(state), **FLEET_KWARGS)
        router.start()
        assert router.request({"dims": [3, 7, 2]})["ok"]
        router.close()
        assert state.exists(), "caller-owned state dir must survive close"


class TestLoadAwareRouting:
    """The ISSUE 10 tentpole's live face: policy selection, route tags
    on the wire, and status carrying the routing telemetry."""

    def test_bounded_fleet_answers_and_tags_routes(self):
        specs = [{"family": "chain", "n": 10, "seed": s % 4} for s in range(16)]
        with FleetRouter(
            2, **FLEET_KWARGS, router="bounded", load_factor=1.25
        ) as router:
            records = router.request_many(specs)
            assert all(r["ok"] for r in records)
            assert {r["route"] for r in records} <= {"ring", "affinity", "spill"}
            status = router.status()
            assert status["router"]["policy"] == "bounded"
            assert status["router"]["load_factor"] == 1.25
            tags = status["router"]["route_tags"]
            assert sum(tags.values()) == len(specs)
            for shard in status["per_shard"]:
                load = shard["load"]
                assert load["inflight"] == 0
                assert load["assigned"] >= 0

    def test_ring_policy_tags_every_record_ring(self):
        specs = [{"family": "chain", "n": 10, "seed": s} for s in range(6)]
        with FleetRouter(2, **FLEET_KWARGS) as router:
            records = router.request_many(specs)
            assert {r["route"] for r in records} == {"ring"}
            status = router.status()
            assert status["router"]["policy"] == "ring"
            # load_factor is a bounded-policy knob; ring reports none
            assert status["router"]["load_factor"] is None

    def test_unknown_router_rejected(self):
        with pytest.raises(ReproError, match="router policy"):
            FleetRouter(2, router="roulette")


class TestDynamicScaling:
    """Elastic shard set between batches: grow under pressure, shrink
    when idle, never drop an accepted request across either handoff."""

    def test_scale_up_and_down_cycle_drops_nothing(self):
        hot = [{"family": "chain", "n": 16, "seed": 100 + i} for i in range(16)]
        cold = [{"family": "chain", "n": 8, "seed": 0}]
        with FleetRouter(
            2,
            **FLEET_KWARGS,
            router="bounded",
            min_shards=2,
            max_shards=3,
            scale_up_depth=4.0,
            scale_down_depth=1.0,
        ) as router:
            failures = 0
            for _ in range(2):
                records = router.request_many(hot)
                failures += sum(1 for r in records if not r.get("ok"))
            grown = router.status()
            assert grown["shards"] == 3, "fleet never grew under pressure"
            assert grown["alive"] == 3
            # the new shard is on the ring and the old sockets survived
            assert sorted(router.ring.shard_ids()) == [0, 1, 2]
            for _ in range(8):
                records = router.request_many(cold)
                failures += sum(1 for r in records if not r.get("ok"))
            settled = router.status()
            assert settled["shards"] == 2, "fleet never shrank when idle"
            assert failures == 0
            assert settled["router"]["gave_up"] == 0
            assert settled["router"]["scale_ups"] >= 1
            assert settled["router"]["scale_downs"] >= 1
            # a retired index's socket file is gone (no stale corpse)
            retired = router.state_dir / "shard-2.sock"
            assert not retired.exists()

    def test_scale_up_reuses_the_retired_shards_socket(self):
        """A grow -> shrink -> grow cycle respawns the same index on
        the same socket path — the ring-segment handoff contract."""
        with FleetRouter(
            1,
            **FLEET_KWARGS,
            router="bounded",
            min_shards=1,
            max_shards=2,
            scale_up_depth=2.0,
            # strictly above the cold-stream fixed point (a 1-request
            # batch at width 2 holds the demand EWMA at 0.5)
            scale_down_depth=0.75,
        ) as router:
            hot = [{"family": "chain", "n": 12, "seed": i} for i in range(8)]
            router.request_many(hot)
            assert len(router._shards) == 2
            first_socket = router._shards[1].socket_path
            for _ in range(8):
                router.request_many([{"family": "chain", "n": 8, "seed": 0}])
            assert len(router._shards) == 1
            router.request_many(hot)
            router.request_many(hot)
            assert len(router._shards) == 2
            assert router._shards[1].socket_path == first_socket

    def test_autoscaling_off_by_default(self):
        with FleetRouter(2, **FLEET_KWARGS) as router:
            hot = [{"family": "chain", "n": 12, "seed": i} for i in range(32)]
            router.request_many(hot)
            status = router.status()
            assert status["shards"] == 2
            assert status["router"]["scale_ups"] == 0

    def test_invalid_scale_range_rejected(self):
        with pytest.raises(ReproError, match="min_shards"):
            FleetRouter(2, min_shards=3)
        with pytest.raises(ReproError, match="min_shards"):
            FleetRouter(2, max_shards=1)


class TestValidation:
    def test_zero_shards_rejected(self):
        with pytest.raises(ReproError):
            FleetRouter(0)
