"""L2DiskCache + TieredResultCache: atomicity, sharing, crash safety."""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

from repro.core import solve
from repro.core.api import SolveResult, instance_key
from repro.core.delta import DeltaMeta, delta_meta_for
from repro.problems import MatrixChainProblem
from repro.problems.generators import random_matrix_chain
from repro.service import L2DiskCache, TieredResultCache


def _result(n: int, value: float = 1.0) -> SolveResult:
    return SolveResult(
        method="sequential",
        value=value,
        w=np.full((n + 1, n + 1), value),
        algebra="min_plus",
    )


class TestL2Disk:
    def test_roundtrip(self, tmp_path):
        cache = L2DiskCache(tmp_path)
        cache.put("k", _result(4, 7.0))
        hit = cache.get("k")
        assert hit is not None and hit.value == 7.0
        np.testing.assert_array_equal(hit.w, _result(4, 7.0).w)
        assert "k" in cache
        stats = cache.stats()
        assert stats["entries"] == 1 and stats["writes"] == 1
        assert stats["hits"] == 1

    def test_miss_counts(self, tmp_path):
        cache = L2DiskCache(tmp_path)
        assert cache.get("absent") is None
        assert cache.stats()["misses"] == 1

    def test_shared_across_instances(self, tmp_path):
        L2DiskCache(tmp_path).put("k", _result(4, 3.0))
        # a second instance on the same directory (a "respawned shard")
        # sees the entry written by the first
        other = L2DiskCache(tmp_path)
        hit = other.get("k")
        assert hit is not None and hit.value == 3.0

    def test_corrupt_entry_is_miss_and_removed(self, tmp_path):
        cache = L2DiskCache(tmp_path)
        cache.put("k", _result(4))
        path = tmp_path / "k.npz"
        path.write_bytes(b"not an npz archive")
        assert cache.get("k") is None
        assert not path.exists()  # the half-entry is never served twice

    def test_checksum_mismatch_is_miss(self, tmp_path):
        cache = L2DiskCache(tmp_path)
        cache.put("k", _result(4, 2.0))
        # rewrite the entry with a tampered table but the old metadata
        with np.load(tmp_path / "k.npz", allow_pickle=False) as archive:
            meta = json.loads(str(archive["meta"][()]))
            w = np.array(archive["w"])
        w[0, 0] += 1.0
        np.savez(tmp_path / "k.npz", w=w, meta=np.array(json.dumps(meta)))
        assert cache.get("k") is None
        assert not (tmp_path / "k.npz").exists()

    def test_tree_results_are_not_written(self, tmp_path):
        cache = L2DiskCache(tmp_path)
        r = solve(
            MatrixChainProblem([10, 20, 5, 30]), method="sequential",
            reconstruct=True,
        )
        assert r.tree is not None
        cache.put("k", r)
        assert "k" not in cache

    def test_delta_index_roundtrip(self, tmp_path):
        cache = L2DiskCache(tmp_path)
        problem = MatrixChainProblem([10, 20, 5, 30])
        meta = delta_meta_for(problem, method="sequential")
        cache.put("k", _result(3, 4.0), delta=meta)
        got = list(cache.delta_candidates(meta.parent_key))
        assert len(got) == 1
        weights, result = got[0]
        np.testing.assert_array_equal(weights, meta.weights)
        assert result.value == 4.0

    def test_dead_marker_is_garbage_collected(self, tmp_path):
        cache = L2DiskCache(tmp_path)
        meta = DeltaMeta(parent_key="p" * 32, weights=np.arange(4))
        cache.put("k", _result(3), delta=meta)
        (tmp_path / "k.npz").unlink()
        assert list(cache.delta_candidates(meta.parent_key)) == []
        assert not (tmp_path / "by-parent" / meta.parent_key / "k").exists()

    def test_byte_budget_evicts_oldest(self, tmp_path):
        one = _result(8)
        cache = L2DiskCache(tmp_path, max_bytes=1)  # everything is over budget
        cache.put("a", one)
        assert cache.stats()["entries"] == 0 and cache.stats()["evictions"] >= 1

    def test_stale_tmp_files_swept_on_init(self, tmp_path):
        stale = tmp_path / ".tmp-k-123-deadbeef.npz"
        fresh = tmp_path / ".tmp-k-124-cafebabe.npz"
        stale.write_bytes(b"x")
        fresh.write_bytes(b"x")
        old = time.time() - 3600
        os.utime(stale, (old, old))
        L2DiskCache(tmp_path)
        assert not stale.exists() and fresh.exists()


class TestCrashConsistency:
    _WRITER = """
import sys, time
sys.path.insert(0, {src!r})
import numpy as np
from repro.core.api import SolveResult
from repro.service import L2DiskCache

cache = L2DiskCache({directory!r})
i = 0
print("ready", flush=True)
while True:
    # big-ish tables so a SIGKILL has a real chance to land mid-write
    r = SolveResult(method="sequential", value=float(i),
                    w=np.full((257, 257), float(i)), algebra="min_plus")
    cache.put(f"key{{i % 8}}", r)
    i += 1
"""

    def test_sigkill_mid_write_never_leaves_a_torn_entry(self, tmp_path):
        src = str(Path(__file__).resolve().parents[2] / "src")
        proc = subprocess.Popen(
            [sys.executable, "-c", self._WRITER.format(src=src, directory=str(tmp_path))],
            stdout=subprocess.PIPE,
        )
        try:
            assert proc.stdout.readline().strip() == b"ready"
            deadline = time.monotonic() + 10.0
            while not list(tmp_path.glob("*.npz")) and time.monotonic() < deadline:
                time.sleep(0.01)
            time.sleep(0.05)  # let a few overwrite cycles run
        finally:
            proc.kill()
            proc.wait()
        reader = L2DiskCache(tmp_path)
        served = 0
        for path in sorted(tmp_path.glob("*.npz")):
            hit = reader.get(path.stem)
            if hit is None:
                continue  # a detected-and-discarded partial: acceptable
            # anything served must be internally consistent
            assert (hit.w == hit.value).all()
            served += 1
        assert served > 0, "the writer never published a complete entry"

    def test_respawned_reader_ignores_stale_tmp(self, tmp_path):
        cache = L2DiskCache(tmp_path)
        cache.put("k", _result(4, 5.0))
        # simulate a writer that died mid-stream long ago
        corpse = tmp_path / ".tmp-k-999-feedface.npz"
        corpse.write_bytes(b"partial")
        old = time.time() - 3600
        os.utime(corpse, (old, old))
        fresh = L2DiskCache(tmp_path)
        assert not corpse.exists()
        assert fresh.get("k").value == 5.0


class TestTiered:
    def test_put_writes_through_and_l1_serves(self, tmp_path):
        cache = TieredResultCache(tmp_path)
        cache.put("k", _result(4, 2.0))
        assert cache.get("k").value == 2.0
        stats = cache.stats()
        assert stats["l1"]["hits"] == 1 and stats["l2"]["hits"] == 0
        assert stats["l2"]["writes"] == 1

    def test_l2_hit_promotes_into_l1(self, tmp_path):
        TieredResultCache(tmp_path).put("k", _result(4, 3.0))
        fresh = TieredResultCache(tmp_path)  # empty L1, shared L2
        assert fresh.get("k").value == 3.0
        stats = fresh.stats()
        assert stats["l2"]["hits"] == 1
        assert fresh.get("k").value == 3.0  # now from L1
        assert fresh.stats()["l1"]["hits"] == 1

    def test_promotion_preserves_delta_indexing(self, tmp_path):
        problem = MatrixChainProblem([10, 20, 5, 30])
        meta = delta_meta_for(problem, method="sequential")
        TieredResultCache(tmp_path).put("k", _result(3, 4.0), delta=meta)
        fresh = TieredResultCache(tmp_path)
        fresh.get("k")  # promote
        got = list(fresh.l1.delta_candidates(meta.parent_key))
        assert len(got) == 1 and got[0][1].value == 4.0

    def test_candidates_merge_l1_and_l2_without_duplicates(self, tmp_path):
        metas = [
            delta_meta_for(MatrixChainProblem([10 + i, 20, 5, 30]), method="sequential")
            for i in range(3)
        ]
        parent = metas[0].parent_key
        writer = TieredResultCache(tmp_path)
        for i, meta in enumerate(metas):
            writer.put(f"k{i}", _result(3, float(i)), delta=meta)
        fresh = TieredResultCache(tmp_path)
        fresh.get("k0")  # k0 now lives in both tiers
        values = sorted(r.value for _, r in fresh.delta_candidates(parent))
        assert values == [0.0, 1.0, 2.0]

    def test_clear_keeps_l2(self, tmp_path):
        cache = TieredResultCache(tmp_path)
        cache.put("k", _result(4, 6.0))
        cache.clear()
        assert len(cache.l1) == 0
        assert cache.get("k").value == 6.0  # re-served from disk

    def test_flat_stats_shape_for_fleet_aggregation(self, tmp_path):
        cache = TieredResultCache(tmp_path)
        cache.put("k", _result(4))
        cache.get("k")
        cache.get("absent")
        stats = cache.stats()
        for key in ("entries", "nbytes", "max_bytes", "hits", "misses",
                    "hit_rate", "evictions", "lifetime", "l1", "l2"):
            assert key in stats
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_solve_hook_and_delta_through_tiers(self, tmp_path):
        cache = TieredResultCache(tmp_path)
        parent = random_matrix_chain(12, seed=4)
        solve(parent, method="sequential", cache=cache)
        dims = parent.delta_weights()
        dims[-1] += 2
        child = MatrixChainProblem([int(x) for x in dims])
        # a fresh tiered cache on the same directory: the delta parent
        # must be discoverable from disk alone
        fresh = TieredResultCache(tmp_path)
        via_cache = solve(child, method="sequential", cache=fresh)
        cold = solve(child, method="sequential")
        assert via_cache.value == cold.value
        np.testing.assert_array_equal(via_cache.w, cold.w)
        # solve() folds reconstruct into its cache key
        key = instance_key(child, method="sequential", reconstruct=False)
        assert key in fresh  # the delta answer was re-cached
