"""ResultCache: LRU + byte-bound semantics and the solve(cache=) hook."""

import threading

import numpy as np

from repro.core import solve
from repro.core.api import SolveResult, instance_key
from repro.core.delta import DeltaMeta, delta_meta_for
from repro.problems import MatrixChainProblem
from repro.service import ResultCache


def _result(n: int, value: float = 1.0) -> SolveResult:
    return SolveResult(method="sequential", value=value, w=np.zeros((n + 1, n + 1)))


class TestLRU:
    def test_get_put_roundtrip(self):
        cache = ResultCache()
        cache.put("k", _result(3, 7.0))
        assert cache.get("k").value == 7.0
        assert "k" in cache and len(cache) == 1

    def test_miss_returns_none_and_counts(self):
        cache = ResultCache()
        assert cache.get("absent") is None
        assert cache.stats()["misses"] == 1

    def test_entry_bound_evicts_lru(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", _result(2))
        cache.put("b", _result(2))
        cache.get("a")  # refresh a: b is now coldest
        cache.put("c", _result(2))
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.stats()["evictions"] == 1

    def test_byte_bound_evicts(self):
        one_entry = _result(8).w.nbytes + 600
        cache = ResultCache(max_bytes=one_entry)
        cache.put("a", _result(8))
        cache.put("b", _result(8))
        assert "b" in cache and "a" not in cache
        assert cache.nbytes <= one_entry

    def test_oversized_entry_not_stored(self):
        cache = ResultCache(max_bytes=64)
        cache.put("big", _result(16))
        assert "big" not in cache and len(cache) == 0

    def test_refresh_same_key_does_not_double_charge(self):
        cache = ResultCache()
        cache.put("k", _result(4))
        before = cache.nbytes
        cache.put("k", _result(4))
        assert cache.nbytes == before and len(cache) == 1

    def test_stored_result_is_defensively_copied_both_ways(self):
        cache = ResultCache()
        r = _result(3)
        cache.put("k", r)
        r.w[0, 0] = 99.0  # mutate the original after insert: no effect
        hit = cache.get("k")
        assert hit.w[0, 0] == 0.0
        # A hit is writable (same contract as a cold solve) and private:
        # scribbling on it must not leak into later hits.
        hit.w[0, 0] = 7.0
        assert cache.get("k").w[0, 0] == 0.0

    def test_clear(self):
        cache = ResultCache()
        cache.put("k", _result(3))
        cache.clear()
        assert len(cache) == 0 and cache.nbytes == 0


class TestCounterEpochs:
    def test_clear_resets_epoch_counters(self):
        cache = ResultCache(max_entries=1)
        cache.put("a", _result(2))
        cache.get("a")
        cache.get("absent")
        cache.put("b", _result(2))  # evicts a
        before = cache.stats()
        assert (before["hits"], before["misses"], before["evictions"]) == (1, 1, 1)
        cache.clear()
        after = cache.stats()
        # the epoch counters describe the (now empty) cache...
        assert (after["hits"], after["misses"], after["evictions"]) == (0, 0, 0)
        assert after["hit_rate"] == 0.0
        # ...while the lifetime block keeps the pre-clear history
        assert after["lifetime"] == {"hits": 1, "misses": 1, "evictions": 1}

    def test_lifetime_accumulates_across_epochs(self):
        cache = ResultCache()
        cache.put("k", _result(2))
        cache.get("k")
        cache.clear()
        cache.put("k", _result(2))
        cache.get("k")
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["lifetime"]["hits"] == 2


class TestDeltaIndex:
    def _meta(self, dims):
        return delta_meta_for(MatrixChainProblem(dims), method="sequential")

    def test_put_with_meta_is_findable_by_parent(self):
        cache = ResultCache()
        meta = self._meta([10, 20, 5, 30])
        cache.put("k", _result(3, 5.0), delta=meta)
        got = list(cache.delta_candidates(meta.parent_key))
        assert len(got) == 1
        weights, result = got[0]
        np.testing.assert_array_equal(weights, meta.weights)
        assert result.value == 5.0

    def test_candidates_newest_first_and_limited(self):
        cache = ResultCache()
        metas = [self._meta([10 + i, 20, 5, 30]) for i in range(6)]
        parent = metas[0].parent_key
        assert all(m.parent_key == parent for m in metas)  # same structure
        for i, meta in enumerate(metas):
            cache.put(f"k{i}", _result(3, float(i)), delta=meta)
        got = [r.value for _, r in cache.delta_candidates(parent)]
        assert got == [5.0, 4.0, 3.0, 2.0]  # newest 4, newest first

    def test_eviction_unindexes(self):
        cache = ResultCache(max_entries=1)
        meta = self._meta([10, 20, 5, 30])
        cache.put("a", _result(3), delta=meta)
        cache.put("b", _result(3))  # evicts a
        assert list(cache.delta_candidates(meta.parent_key)) == []

    def test_probe_is_counter_and_lru_neutral(self):
        cache = ResultCache()
        meta = self._meta([10, 20, 5, 30])
        cache.put("k", _result(3), delta=meta)
        list(cache.delta_candidates(meta.parent_key))
        stats = cache.stats()
        assert stats["hits"] == 0 and stats["misses"] == 0

    def test_replacing_entry_reindexes(self):
        cache = ResultCache()
        meta = self._meta([10, 20, 5, 30])
        cache.put("k", _result(3, 1.0), delta=meta)
        cache.put("k", _result(3, 2.0), delta=meta)
        got = [r.value for _, r in cache.delta_candidates(meta.parent_key)]
        assert got == [2.0]

    def test_delta_meta_survives_clear_reinsert(self):
        cache = ResultCache()
        meta = DeltaMeta(parent_key="p", weights=np.arange(4))
        cache.put("k", _result(3), delta=meta)
        cache.clear()
        assert list(cache.delta_candidates("p")) == []


class TestThreadedStress:
    def test_concurrent_get_put_evict_is_consistent(self):
        cache = ResultCache(max_entries=16)
        errors = []

        def worker(tid):
            try:
                for i in range(200):
                    key = f"k{(tid * 7 + i) % 32}"
                    if i % 3 == 0:
                        cache.put(key, _result(4, float(i)))
                    else:
                        hit = cache.get(key)
                        if hit is not None:
                            # a served table is always intact and private
                            assert hit.w.shape == (5, 5)
                            hit.w[0, 0] = 99.0
            except Exception as exc:  # pragma: no cover - only on failure
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        stats = cache.stats()
        assert stats["entries"] <= 16
        assert stats["lifetime"]["hits"] + stats["lifetime"]["misses"] > 0
        # no stored table was corrupted by the hitters' scribbles
        for key in list(cache._entries):
            hit = cache.get(key)
            assert hit is None or hit.w[0, 0] == 0.0


class TestSolveHook:
    def test_hit_skips_solver_and_matches_bitwise(self):
        cache = ResultCache()
        p = MatrixChainProblem([30, 35, 15, 5, 10, 20, 25])
        cold = solve(p, method="huang", cache=cache)
        hit = solve(MatrixChainProblem([30, 35, 15, 5, 10, 20, 25]),
                    method="huang", cache=cache)
        assert hit.value == cold.value
        assert np.array_equal(hit.w, cold.w)
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["entries"] == 1

    def test_execution_knobs_share_one_entry(self):
        cache = ResultCache()
        p = MatrixChainProblem([10, 20, 5, 30])
        a = solve(p, method="huang", cache=cache)
        b = solve(p, method="huang", backend="thread", workers=2, cache=cache)
        assert cache.stats()["hits"] == 1  # backend change did not re-solve
        assert np.array_equal(a.w, b.w)

    def test_method_and_algebra_partition_entries(self):
        cache = ResultCache()
        p = MatrixChainProblem([10, 20, 5, 30])
        solve(p, method="huang", cache=cache)
        solve(p, method="sequential", cache=cache)
        solve(p, method="huang", algebra="max_plus", cache=cache)
        assert cache.stats()["entries"] == 3 and cache.stats()["hits"] == 0

    def test_uncacheable_problem_bypasses(self):
        from repro.problems import GenericProblem

        cache = ResultCache()
        p = GenericProblem(3, lambda i: 0.0, lambda i, k, j: 1.0)
        assert instance_key(p) is None
        solve(p, cache=cache)
        solve(p, cache=cache)
        assert len(cache) == 0 and cache.stats()["hits"] == 0
