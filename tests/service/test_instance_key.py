"""instance_key: the canonical hash the result cache is keyed by."""

import pytest

from repro.core.api import instance_key
from repro.core.termination import WStable
from repro.problems import (
    BottleneckChainProblem,
    GenericProblem,
    MatrixChainProblem,
    OptimalBSTProblem,
    PolygonTriangulationProblem,
    ReliabilityBSTProblem,
)


def test_equal_instances_equal_keys():
    a = instance_key(MatrixChainProblem([10, 20, 5, 30]), method="huang")
    b = instance_key(MatrixChainProblem([10, 20, 5, 30]), method="huang")
    assert a == b and len(a) == 32


def test_data_method_algebra_all_partition():
    p = MatrixChainProblem([10, 20, 5, 30])
    base = instance_key(p, method="huang")
    assert instance_key(MatrixChainProblem([10, 20, 5, 31]), method="huang") != base
    assert instance_key(p, method="rytter") != base
    assert instance_key(p, method="huang", algebra="max_plus") != base
    assert instance_key(p, method="huang", reconstruct=True) != base


def test_execution_knobs_do_not_partition():
    p = MatrixChainProblem([10, 20, 5, 30])
    base = instance_key(p, method="huang")
    same = instance_key(
        p, method="huang", backend="process", workers=8, tiles=4,
        start_method="spawn",
    )
    assert same == base


def test_max_n_partitions():
    # max_n is a guard, not an execution knob: it can reject a request,
    # so a guarded and an unguarded request must never share a key
    # (coalescing one's rejection onto the other would be wrong).
    p = MatrixChainProblem([10, 20, 5, 30])
    assert instance_key(p, method="huang", max_n=2) != instance_key(p, method="huang")


def test_preferred_algebra_is_resolved_into_the_key():
    bottleneck = BottleneckChainProblem([3.0, 9.0, 2.0, 7.0])
    # algebra=None resolves to the family's preferred algebra, so an
    # explicit "minimax" names the same request.
    assert instance_key(bottleneck) == instance_key(bottleneck, algebra="minimax")
    assert instance_key(bottleneck) != instance_key(bottleneck, algebra="min_plus")


@pytest.mark.parametrize(
    "make",
    [
        lambda: MatrixChainProblem([10, 20, 5, 30]),
        lambda: OptimalBSTProblem([0.15, 0.1], [0.05, 0.1, 0.05]),
        lambda: PolygonTriangulationProblem([(0, 0), (1, 0), (1, 1), (0, 1)]),
        lambda: BottleneckChainProblem([3.0, 9.0, 2.0]),
        lambda: ReliabilityBSTProblem([0.9, 0.8], [0.99, 0.95, 0.97]),
    ],
    ids=["chain", "bst", "polygon", "bottleneck", "reliability"],
)
def test_every_family_is_cacheable_and_stable(make):
    assert instance_key(make()) == instance_key(make())


def test_families_with_identical_bytes_do_not_collide():
    # Same defining vector, different family: the family tag partitions.
    weights = [3.0, 9.0, 2.0, 7.0]
    chain = MatrixChainProblem([int(x) for x in weights])
    bottleneck = BottleneckChainProblem(weights)
    assert instance_key(chain, algebra="min_plus") != instance_key(
        bottleneck, algebra="min_plus"
    )


def test_callable_generic_uncacheable_but_dense_generic_cacheable():
    assert instance_key(GenericProblem(3, lambda i: 0.0, lambda i, k, j: 1.0)) is None
    import numpy as np

    dense = np.ones((4, 4, 4))
    a = GenericProblem(3, lambda i: 0.0, lambda i, k, j: 1.0, f_dense=dense)
    b = GenericProblem(3, lambda i: 0.0, lambda i, k, j: 1.0, f_dense=dense.copy())
    key = instance_key(a)
    assert key is not None and key == instance_key(b)


def test_policy_object_makes_request_uncacheable():
    p = MatrixChainProblem([10, 20, 5, 30])
    assert instance_key(p, method="huang", policy=WStable()) is None
