"""Golden regression fixtures: solver × algebra tables pinned bitwise.

``tests/golden/golden_tables.json`` stores the exact float64 ``w``
table and decoded value for every (instance, method, algebra) cell of
the golden grid (see ``scripts/regen_golden.py``, which regenerates
the file). This test recomputes each entry and fails on *any* bitwise
drift — the engine's tables are deterministic by design, so any diff
here is a behaviour change that must be reviewed, not noise.
"""

import importlib.util
import json
from pathlib import Path

import numpy as np
import pytest

from repro.core import solve

GOLDEN_FILE = Path(__file__).parent / "golden_tables.json"

# Single source of truth for spec -> problem: the regeneration script
# itself (loaded by path; scripts/ is not a package).
_SCRIPT = Path(__file__).resolve().parents[2] / "scripts" / "regen_golden.py"
_spec_obj = importlib.util.spec_from_file_location("regen_golden", _SCRIPT)
_regen = importlib.util.module_from_spec(_spec_obj)
_spec_obj.loader.exec_module(_regen)
_problem_from_spec = _regen.problem_from_spec


def _entries():
    return json.loads(GOLDEN_FILE.read_text())


def test_fixture_file_exists_and_covers_the_grid():
    entries = _entries()
    assert len(entries) == 45
    seen = {(e["case"], e["method"], e["algebra"]) for e in entries}
    assert len(seen) == len(entries)
    # The flagship grid: every method × every algebra on the CLRS chain.
    clrs = {(m, a) for c, m, a in seen if c == "clrs_chain"}
    assert len(clrs) == 25


@pytest.mark.parametrize("kernel_impl", ["slab", "fused"])
@pytest.mark.parametrize(
    "entry",
    _entries(),
    ids=lambda e: f"{e['case']}-{e['method']}-{e['algebra']}",
)
def test_no_bitwise_drift(entry, kernel_impl):
    problem = _problem_from_spec(entry["problem"])
    result = solve(
        problem,
        method=entry["method"],
        algebra=entry["algebra"],
        kernel_impl=kernel_impl,
    )
    assert result.value == entry["value"]
    assert result.iterations == entry["iterations"]
    golden_w = np.asarray(entry["w"], dtype=np.float64)
    assert golden_w.shape == result.w.shape
    # Bitwise: array_equal on float64 (inf == inf holds; no NaNs exist).
    assert np.array_equal(result.w, golden_w), (
        f"golden drift at {entry['case']}/{entry['method']}/{entry['algebra']}: "
        "regenerate with scripts/regen_golden.py only if the change is intended"
    )
