"""Unit tests for the hybrid seeded solver."""

import math

import numpy as np
import pytest

from repro.core.hybrid import HybridSolver, hybrid_schedule_length
from repro.core.sequential import solve_sequential
from repro.problems.generators import random_bst, random_generic, random_matrix_chain
from repro.trees import synthesize_instance, zigzag_tree


class TestSchedule:
    def test_endpoints(self):
        # s = 1 is the paper schedule + 0/rounding; s >= n is trivial.
        assert hybrid_schedule_length(49, 49) == 1
        assert hybrid_schedule_length(49, 100) == 1
        full = 2 * math.isqrt(48) + 2
        assert hybrid_schedule_length(49, 1) <= full + 2

    def test_monotone_in_seed(self):
        vals = [hybrid_schedule_length(64, s) for s in (1, 4, 16, 36, 64)]
        assert vals == sorted(vals, reverse=True)

    def test_invalid(self):
        with pytest.raises(ValueError):
            hybrid_schedule_length(0, 1)
        with pytest.raises(ValueError):
            hybrid_schedule_length(5, 0)


class TestSeeding:
    def test_seeded_cells_exact_before_iterating(self):
        p = random_generic(12, seed=0)
        s = HybridSolver(p, seed_span=5)
        ref = solve_sequential(p).w
        for length in range(1, 6):
            for i in range(0, 12 - length + 1):
                assert s.w[i, i + length] == pytest.approx(ref[i, i + length])
        # Longer spans are still unsolved.
        assert np.isinf(s.w[0, 12])

    def test_default_seed_span(self):
        p = random_generic(27, seed=0)
        assert HybridSolver(p).seed_span == 3  # ceil(27^(1/3))

    def test_seed_span_capped_at_n(self):
        p = random_generic(4, seed=0)
        assert HybridSolver(p, seed_span=100).seed_span == 4

    def test_seeding_work_formula(self):
        p = random_generic(10, seed=0)
        s = HybridSolver(p, seed_span=4)
        manual = sum(
            (10 - L + 1) * (L - 1) for L in range(2, 5)
        )
        assert s.seeding_work() == manual


class TestCorrectness:
    @pytest.mark.parametrize("seed_span", [1, 2, 4, 8])
    def test_matches_sequential(self, seed_span):
        for seed in range(3):
            p = random_generic(13, seed=seed)
            out = HybridSolver(p, seed_span=seed_span).run()
            assert np.isclose(out.value, solve_sequential(p).value)

    def test_matches_on_bst(self):
        p = random_bst(11, seed=2)
        out = HybridSolver(p, seed_span=3).run()
        assert np.isclose(out.value, solve_sequential(p).value)

    def test_zigzag_within_reduced_schedule(self):
        """The shortened schedule is still sufficient on the worst case."""
        n = 30
        prob = synthesize_instance(zigzag_tree(n), style="uniform_plus")
        solver = HybridSolver(prob, seed_span=9)
        out = solver.run()  # default: hybrid schedule
        assert out.value == 2 * n - 1
        assert out.iterations == hybrid_schedule_length(n, 9)
        assert out.iterations < 2 * math.isqrt(n - 1) + 2

    def test_fewer_iterations_than_unseeded(self):
        p = random_matrix_chain(25, seed=1)
        seeded = HybridSolver(p, seed_span=9).run()
        assert seeded.iterations < 2 * math.isqrt(24) + 2
        assert np.isclose(seeded.value, solve_sequential(p).value)
