"""Unit tests for the solve() façade."""

import pytest

from repro.core import solve
from repro.core.termination import UntilValue, WStable
from repro.errors import InvalidProblemError
from repro.problems.generators import random_bst, random_generic


class TestMethods:
    def test_all_methods_agree(self):
        p = random_generic(9, seed=0)
        values = {
            m: solve(p, method=m).value
            for m in ("sequential", "huang", "huang-banded", "rytter")
        }
        ref = values["sequential"]
        for m, v in values.items():
            assert v == pytest.approx(ref), m

    def test_knuth_on_bst(self):
        p = random_bst(8, seed=1)
        assert solve(p, method="knuth").value == pytest.approx(
            solve(p, method="sequential").value
        )

    def test_unknown_method(self):
        with pytest.raises(InvalidProblemError, match="unknown method"):
            solve(random_generic(4, seed=0), method="magic")


class TestResultContents:
    def test_sequential_has_no_iterations(self):
        r = solve(random_generic(5, seed=0), method="sequential")
        assert r.iterations is None and r.trace is None
        assert r.n == 5

    def test_iterative_has_trace(self):
        r = solve(random_generic(5, seed=0), method="huang")
        assert r.iterations >= 1
        assert r.trace is not None and r.trace.iterations == r.iterations

    def test_reconstruct_flag(self, clrs_chain):
        r = solve(clrs_chain, method="huang", reconstruct=True)
        assert r.tree is not None
        assert r.tree.weight(clrs_chain) == pytest.approx(r.value)
        r2 = solve(clrs_chain, method="huang")
        assert r2.tree is None

    def test_w_table_returned(self, clrs_chain):
        r = solve(clrs_chain, method="sequential")
        assert r.w[0, 6] == 15125.0


class TestOptions:
    def test_policy_forwarded(self, clrs_chain):
        ref = solve(clrs_chain, method="sequential").value
        r = solve(clrs_chain, method="huang", policy=UntilValue(ref))
        assert r.iterations <= 6

    def test_max_n_forwarded(self):
        p = random_generic(10, seed=0)
        with pytest.raises(InvalidProblemError, match="max_n"):
            solve(p, method="huang", max_n=8)

    def test_solver_kwargs_forwarded(self):
        p = random_generic(8, seed=0)
        r = solve(p, method="huang-banded", band=4, policy=WStable())
        assert r.value == pytest.approx(solve(p, method="sequential").value)


class TestAlgebraOption:
    def test_default_is_min_plus(self, clrs_chain):
        r = solve(clrs_chain, method="huang")
        assert r.algebra == "min_plus" and r.value == 15125.0

    def test_unknown_algebra_rejected(self, clrs_chain):
        with pytest.raises(InvalidProblemError, match="unknown algebra"):
            solve(clrs_chain, algebra="tropical-typo")

    def test_knuth_rejects_non_min_plus(self, clrs_bst):
        with pytest.raises(InvalidProblemError, match="min_plus"):
            solve(clrs_bst, method="knuth", algebra="minimax")

    def test_lex_value_is_decoded_primary_cost(self, clrs_chain):
        r = solve(clrs_chain, method="huang", algebra="lex_min_plus")
        assert r.value == 15125.0  # decoded: the min-plus cost channel
        assert r.algebra == "lex_min_plus"

    def test_reconstruct_under_minimax(self, clrs_chain):
        r = solve(clrs_chain, method="huang", algebra="minimax", reconstruct=True)
        worst = max(
            clrs_chain.split_cost(t.i, t.split, t.j)
            for t in r.tree.internal_nodes()
        )
        assert worst == r.value

    def test_algebra_instance_accepted(self, clrs_chain):
        from repro.core import get_algebra

        r = solve(clrs_chain, algebra=get_algebra("max_plus"))
        assert r.algebra == "max_plus" and r.value == 58000.0

    def test_preferred_algebra_picked_up_when_unspecified(self):
        from repro.problems import BottleneckChainProblem, ReliabilityBSTProblem

        bottleneck = BottleneckChainProblem([3, 9, 2, 7])
        assert solve(bottleneck).algebra == "minimax"
        assert solve(bottleneck, method="huang").value == 14.0
        reliability = ReliabilityBSTProblem([0.9, 0.8], [0.99, 0.95, 0.97])
        assert solve(reliability).algebra == "maxmin"
        # Explicit algebra always overrides the family preference.
        assert solve(bottleneck, algebra="min_plus").algebra == "min_plus"
