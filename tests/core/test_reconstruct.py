"""Unit tests for optimal-tree reconstruction and table verification."""

import numpy as np
import pytest

from repro.core.huang import HuangSolver
from repro.core.reconstruct import reconstruct_tree, verify_w_table
from repro.core.sequential import solve_sequential
from repro.errors import InvalidProblemError
from repro.problems import MatrixChainProblem
from repro.problems.generators import random_generic


class TestReconstruct:
    def test_weight_matches_value(self, clrs_chain):
        seq = solve_sequential(clrs_chain)
        tree = reconstruct_tree(clrs_chain, seq.w)
        assert tree.weight(clrs_chain) == pytest.approx(seq.value)
        assert tree.interval == (0, 6)

    def test_subinterval(self, clrs_chain):
        seq = solve_sequential(clrs_chain)
        sub = reconstruct_tree(clrs_chain, seq.w, i=1, j=4)
        assert sub.interval == (1, 4)
        assert sub.weight(clrs_chain) == pytest.approx(seq.w[1, 4])

    def test_from_iterative_solver(self):
        p = random_generic(9, seed=2)
        out = HuangSolver(p).run()
        tree = reconstruct_tree(p, out.w)
        assert tree.weight(p) == pytest.approx(out.value)

    def test_single_leaf(self):
        p = random_generic(1, seed=0)
        seq = solve_sequential(p)
        assert reconstruct_tree(p, seq.w).is_leaf

    def test_inconsistent_table_rejected(self, clrs_chain):
        seq = solve_sequential(clrs_chain)
        w = seq.w.copy()
        w[0, 6] = 1.0  # impossible value
        with pytest.raises(InvalidProblemError, match="inconsistent"):
            reconstruct_tree(clrs_chain, w)

    def test_wrong_shape(self, clrs_chain):
        with pytest.raises(InvalidProblemError, match="shape"):
            reconstruct_tree(clrs_chain, np.zeros((3, 3)))

    def test_half_converged_table_rejected(self, clrs_chain):
        s = HuangSolver(clrs_chain)
        s.iterate()  # long intervals still inf
        with pytest.raises(InvalidProblemError):
            reconstruct_tree(clrs_chain, s.w)


class TestVerify:
    def test_accepts_correct_table(self):
        p = random_generic(10, seed=1)
        assert verify_w_table(p, solve_sequential(p).w)

    def test_rejects_perturbed(self):
        p = random_generic(8, seed=1)
        w = solve_sequential(p).w.copy()
        w[0, 8] *= 1.01
        assert not verify_w_table(p, w)

    def test_rejects_bad_leaves(self):
        p = MatrixChainProblem([2, 3, 4])
        w = solve_sequential(p).w.copy()
        w[0, 1] = 5.0
        assert not verify_w_table(p, w)

    def test_rejects_wrong_shape(self):
        p = MatrixChainProblem([2, 3, 4])
        assert not verify_w_table(p, np.zeros((2, 2)))
