"""The batched solve_many service layer: ordering, heterogeneity,
per-item overrides, and error isolation on every pool backend."""

import pytest

from repro.core import BatchItem, solve, solve_many
from repro.core.termination import WStable
from repro.errors import InvalidProblemError
from repro.problems import (
    MatrixChainProblem,
    OptimalBSTProblem,
    PolygonTriangulationProblem,
)
from repro.problems.generators import random_generic, random_matrix_chain

BACKENDS = ["serial", "thread", "process"]


def _heterogeneous_batch():
    return [
        MatrixChainProblem([30, 35, 15, 5, 10, 20, 25]),
        OptimalBSTProblem(
            [0.15, 0.10, 0.05, 0.10, 0.20], [0.05, 0.10, 0.05, 0.05, 0.05, 0.10]
        ),
        PolygonTriangulationProblem(
            [(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)], rule="perimeter"
        ),
        MatrixChainProblem([10, 20, 5, 30]),
    ]


class TestOrderingAndValues:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_results_in_submission_order(self, backend):
        batch = _heterogeneous_batch()
        results = solve_many(batch, method="huang", backend=backend, max_workers=3)
        expected = [solve(p, method="huang").value for p in batch]
        assert [r.value for r in results] == pytest.approx(expected)
        assert all(r.method == "huang" for r in results)

    def test_order_preserved_with_skewed_sizes(self):
        """Small problems finish long before the big one submitted first;
        the result list must still follow submission order."""
        batch = [random_matrix_chain(16, seed=0)] + [
            random_matrix_chain(4, seed=s) for s in range(1, 6)
        ]
        results = solve_many(batch, method="huang-banded", backend="thread")
        for problem, result in zip(batch, results):
            assert result.n == problem.n
            assert result.value == pytest.approx(
                solve(problem, method="sequential").value
            )

    def test_per_item_method_overrides(self):
        batch = [
            (MatrixChainProblem([30, 35, 15, 5, 10, 20, 25]), "huang"),
            (MatrixChainProblem([10, 20, 5, 30]), "rytter"),
            MatrixChainProblem([3, 7, 2]),  # inherits the batch default
        ]
        results = solve_many(batch, method="sequential", backend="serial")
        assert [r.method for r in results] == ["huang", "rytter", "sequential"]
        assert results[0].value == 15125.0

    def test_batch_item_kwargs(self):
        p = random_matrix_chain(10, seed=3)
        item = BatchItem(p, method="huang-banded", solve_kwargs={"policy": WStable()})
        (result,) = solve_many([item], backend="serial")
        assert result.value == pytest.approx(solve(p, method="sequential").value)

    def test_batchwide_kwargs_forwarded(self):
        (result,) = solve_many(
            [MatrixChainProblem([2, 3, 4, 5])],
            method="huang",
            backend="serial",
            reconstruct=True,
        )
        assert result.tree is not None

    def test_empty_batch(self):
        assert solve_many([], backend="serial") == []


class TestErrorIsolation:
    def _bad_batch(self):
        return [
            MatrixChainProblem([2, 3, 4]),
            (random_generic(10, seed=0), "huang", {"max_n": 4}),  # exceeds guard
            (random_generic(8, seed=1), "huang"),
        ]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_on_error_return_keeps_slots(self, backend):
        results = solve_many(self._bad_batch(), backend=backend, on_error="return")
        assert results[0].value == pytest.approx(
            solve(MatrixChainProblem([2, 3, 4]), method="sequential").value
        )
        assert isinstance(results[1], InvalidProblemError)
        assert results[2].method == "huang"

    def test_on_error_raise_default(self):
        with pytest.raises(InvalidProblemError, match="max_n"):
            solve_many(self._bad_batch(), backend="serial")

    def test_unknown_method_rejected_before_execution(self):
        with pytest.raises(InvalidProblemError, match="unknown method"):
            solve_many([(MatrixChainProblem([2, 3, 4]), "magic")], backend="serial")

    def test_bad_on_error_value(self):
        with pytest.raises(InvalidProblemError, match="on_error"):
            solve_many([], on_error="explode")

    def test_non_problem_item_rejected(self):
        with pytest.raises(InvalidProblemError, match="ParenthesizationProblem"):
            solve_many(["not a problem"], backend="serial")

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_bad_algebra_name_mid_batch_is_isolated(self, backend):
        """A bad ``algebra=`` on one item is resolved inside the worker,
        so the other items still succeed and the failed slot carries
        the error (same isolation contract as any per-item failure)."""
        batch = [
            MatrixChainProblem([2, 3, 4]),
            BatchItem(
                MatrixChainProblem([5, 6, 7]),
                method="huang",
                solve_kwargs={"algebra": "tropical-typo"},
            ),
            BatchItem(
                MatrixChainProblem([2, 9, 4, 3]),
                method="huang",
                solve_kwargs={"algebra": "minimax"},
            ),
        ]
        results = solve_many(batch, backend=backend, on_error="return")
        assert results[0].value == 24.0  # 2*3*4, the only split
        assert isinstance(results[1], InvalidProblemError)
        assert "unknown algebra" in str(results[1])
        assert results[2].algebra == "minimax" and results[2].method == "huang"

    def test_bad_algebra_raises_with_default_on_error(self):
        with pytest.raises(InvalidProblemError, match="unknown algebra"):
            solve_many(
                [MatrixChainProblem([2, 3, 4])],
                backend="serial",
                algebra="tropical-typo",
            )

    def test_batchwide_algebra_forwarded(self):
        results = solve_many(
            [MatrixChainProblem([2, 3, 4]), (MatrixChainProblem([4, 1, 5]), "huang")],
            backend="serial",
            algebra="max_plus",
        )
        assert [r.algebra for r in results] == ["max_plus", "max_plus"]


class TestNestedProcessBackend:
    def test_nested_process_backend_errors_cleanly(self):
        """A per-item backend="process" inside a process pool cannot
        fork again (daemonic workers); it must come back as an error
        record, not deadlock the batch (regression: the child inherited
        _SHARED_LOCK in the locked state)."""
        batch = [
            (
                MatrixChainProblem([30, 35, 15, 5, 10, 20, 25]),
                "huang",
                {"backend": "process"},
            ),
            MatrixChainProblem([10, 20, 5, 30]),
        ]
        results = solve_many(batch, backend="process", on_error="return")
        assert isinstance(results[0], Exception)
        assert results[1].value == 2500.0
