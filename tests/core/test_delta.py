"""Delta re-solves: dirty windows, bitwise identity, refusal paths."""

import numpy as np
import pytest

from repro.core import solve
from repro.core.delta import (
    DELTA_METHODS,
    delta_meta_for,
    delta_resolve,
    try_delta,
)
from repro.problems import (
    BottleneckChainProblem,
    MatrixChainProblem,
    PolygonTriangulationProblem,
)
from repro.problems.generators import (
    random_bottleneck_chain,
    random_bst,
    random_matrix_chain,
    random_polygon,
    random_reliability_bst,
)
from repro.service import ResultCache


def _families(n=12, seed=5):
    return [
        random_matrix_chain(n, seed=seed),
        random_bottleneck_chain(n, seed=seed),
        random_bst(n, seed=seed),
        random_reliability_bst(n, seed=seed),
        random_polygon(n + 2, seed=seed),
    ]


def _bump_last(problem):
    """The same instance with its last weight coordinate nudged."""
    w = problem.delta_weights()
    # integer weights are nudged up; float weights shrink so families
    # with bounded domains (reliabilities in (0, 1]) stay valid
    w[-1] = w[-1] + 1 if w.dtype.kind in "iu" else w[-1] * 0.75
    return _rebuild(problem, w)


def _rebuild(problem, weights):
    from repro.problems import OptimalBSTProblem, ReliabilityBSTProblem

    if isinstance(problem, MatrixChainProblem):
        return MatrixChainProblem([int(x) for x in weights])
    if isinstance(problem, BottleneckChainProblem):
        return BottleneckChainProblem(list(weights))
    if isinstance(problem, OptimalBSTProblem):
        m = (len(weights) - 1) // 2
        return OptimalBSTProblem(list(weights[m + 1 :]), list(weights[: m + 1]))
    if isinstance(problem, ReliabilityBSTProblem):
        n = (len(weights) + 1) // 2
        return ReliabilityBSTProblem(list(weights[n:]), list(weights[:n]))
    if isinstance(problem, PolygonTriangulationProblem):
        pts = [tuple(pt) for pt in np.asarray(weights).reshape(-1, 2)]
        return PolygonTriangulationProblem(pts, rule=problem._rule)
    raise AssertionError(f"no rebuild for {type(problem).__name__}")


class TestSplitCostRow:
    @pytest.mark.parametrize("problem", _families(), ids=lambda p: type(p).__name__)
    def test_matches_dense_f_table_bitwise(self, problem):
        f = problem.cached_f_table()
        n = problem.n
        for i, j in [(0, n), (0, 2), (1, n - 1), (n - 3, n)]:
            row = problem.split_cost_row(i, j)
            assert row.dtype == np.float64
            np.testing.assert_array_equal(row, f[i, i + 1 : j, j])

    def test_perimeter_polygon_matches_too(self):
        problem = PolygonTriangulationProblem(
            [(0.0, 0.0), (2.0, 0.1), (3.0, 1.5), (1.7, 3.0), (0.1, 2.0), (-0.5, 1.0)],
            rule="perimeter",
        )
        f = problem.cached_f_table()
        n = problem.n
        np.testing.assert_array_equal(problem.split_cost_row(0, n), f[0, 1:n, n])


class TestDeltaWindow:
    def test_equal_weights_empty_window(self):
        p = random_matrix_chain(8, seed=0)
        lo, hi = p.delta_window(p.delta_weights())
        assert lo > p.n and hi < 0

    def test_suffix_edit_window_is_right_edge(self):
        p = random_matrix_chain(8, seed=0)
        w = p.delta_weights()
        w[-1] += 1
        assert p.delta_window(w) == (p.n, p.n)

    def test_shape_mismatch_is_unknown(self):
        p = random_matrix_chain(8, seed=0)
        assert p.delta_window(np.zeros(3)) is None
        assert p.delta_window("junk") is None

    def test_generic_problem_opts_out(self):
        from repro.problems import GenericProblem

        p = GenericProblem(4, lambda i: 0.0, lambda i, k, j: 1.0)
        assert p.delta_weights() is None
        assert p.delta_parent_payload() is None
        assert delta_meta_for(p, method="sequential") is None


class TestDeltaResolveBitwise:
    @pytest.mark.parametrize("problem", _families(), ids=lambda p: type(p).__name__)
    @pytest.mark.parametrize("kernel_impl", ["numpy", "auto"])
    def test_families_bitwise_identical_to_cold(self, problem, kernel_impl):
        parent_result = solve(problem, method="sequential")
        child = _bump_last(problem)
        cold = solve(child, method="sequential")
        got = delta_resolve(
            child,
            problem.delta_weights(),
            parent_result,
            method="sequential",
            kernel_impl=kernel_impl,
            max_dirty=1.0,
        )
        assert got is not None
        assert got.value == cold.value
        np.testing.assert_array_equal(got.w, cold.w)

    @pytest.mark.parametrize("algebra", ["min_plus", "max_plus", "minimax", "lex_min_plus"])
    def test_algebras_bitwise_identical_to_cold(self, algebra):
        # integer-valued dims keep packed lex arithmetic exact
        problem = random_matrix_chain(10, seed=3)
        parent_result = solve(problem, method="sequential", algebra=algebra)
        child = _bump_last(problem)
        cold = solve(child, method="sequential", algebra=algebra)
        got = delta_resolve(
            child,
            problem.delta_weights(),
            parent_result,
            method="sequential",
            algebra=algebra,
            max_dirty=1.0,
        )
        assert got is not None and got.algebra == cold.algebra
        np.testing.assert_array_equal(got.w, cold.w)

    def test_equal_weights_returns_parent_copy(self):
        problem = random_matrix_chain(8, seed=1)
        parent_result = solve(problem, method="sequential")
        got = delta_resolve(
            problem,
            problem.delta_weights(),
            parent_result,
            method="sequential",
            max_dirty=0.0,  # even a zero budget: nothing is dirty
        )
        assert got is not None and got.value == parent_result.value
        np.testing.assert_array_equal(got.w, parent_result.w)
        assert got.w is not parent_result.w

    def test_dirty_fraction_gate_declines(self):
        problem = random_matrix_chain(8, seed=1)
        parent_result = solve(problem, method="sequential")
        child = _bump_last(problem)
        assert (
            delta_resolve(
                child,
                problem.delta_weights(),
                parent_result,
                method="sequential",
                max_dirty=0.0,
            )
            is None
        )

    def test_wrong_algebra_parent_declines(self):
        problem = random_matrix_chain(8, seed=1)
        parent_result = solve(problem, method="sequential", algebra="max_plus")
        child = _bump_last(problem)
        assert (
            delta_resolve(
                child,
                problem.delta_weights(),
                parent_result,
                method="sequential",
                max_dirty=1.0,
            )
            is None
        )


class TestTryDelta:
    def _warm_cache(self, problem, method="sequential", **kwargs):
        cache = ResultCache()
        solve(problem, method=method, cache=cache, **kwargs)
        return cache

    def test_probe_finds_cached_sibling(self):
        parent = random_matrix_chain(12, seed=9)
        cache = self._warm_cache(parent)
        child = _bump_last(parent)
        cold = solve(child, method="sequential")
        got = try_delta(cache, child, method="sequential")
        assert got is not None
        np.testing.assert_array_equal(got.w, cold.w)

    @pytest.mark.parametrize("method", DELTA_METHODS)
    def test_every_pinned_method_answers(self, method):
        parent = random_matrix_chain(12, seed=9)
        cache = self._warm_cache(parent, method=method)
        child = _bump_last(parent)
        cold = solve(child, method=method)
        got = try_delta(cache, child, method=method)
        assert got is not None and got.method == method
        np.testing.assert_array_equal(got.w, cold.w)

    def test_off_axis_method_declines(self):
        parent = random_bst(10, seed=9)  # BSTs satisfy knuth's QI conditions
        cache = self._warm_cache(parent, method="knuth")
        child = _bump_last(parent)
        assert try_delta(cache, child, method="knuth") is None

    def test_reconstruct_declines(self):
        parent = random_matrix_chain(12, seed=9)
        cache = self._warm_cache(parent)
        child = _bump_last(parent)
        assert try_delta(cache, child, method="sequential", reconstruct=True) is None

    def test_solver_tuning_kwargs_decline(self):
        parent = random_matrix_chain(12, seed=9)
        cache = self._warm_cache(parent)
        child = _bump_last(parent)
        assert try_delta(cache, child, method="huang-banded", band=3) is None

    def test_execution_kwargs_do_not_decline(self):
        parent = random_matrix_chain(12, seed=9)
        cache = self._warm_cache(parent)
        child = _bump_last(parent)
        got = try_delta(
            cache, child, method="sequential", backend="thread", workers=2
        )
        assert got is not None

    def test_plain_dict_cache_is_ignored(self):
        parent = random_matrix_chain(12, seed=9)
        child = _bump_last(parent)
        assert try_delta({}, child, method="sequential") is None

    def test_different_structure_misses(self):
        parent = random_matrix_chain(12, seed=9)
        cache = self._warm_cache(parent)
        other = random_matrix_chain(13, seed=9)  # different n: different parent key
        assert try_delta(cache, other, method="sequential") is None


class TestSolveIntegration:
    def test_solve_cache_delta_path_bitwise(self):
        cache = ResultCache()
        parent = random_matrix_chain(14, seed=2)
        solve(parent, method="sequential", cache=cache)
        child = _bump_last(parent)
        via_cache = solve(child, method="sequential", cache=cache)
        cold = solve(child, method="sequential")
        assert via_cache.value == cold.value
        np.testing.assert_array_equal(via_cache.w, cold.w)
        # the delta answer was re-cached: the repeat is a plain hit
        before = cache.stats()["hits"]
        solve(child, method="sequential", cache=cache)
        assert cache.stats()["hits"] == before + 1
