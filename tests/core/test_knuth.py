"""Unit tests for Knuth's O(n²) speedup."""

import numpy as np
import pytest

from repro.core.knuth import is_quadrangle, solve_knuth
from repro.core.sequential import solve_sequential
from repro.errors import InvalidProblemError
from repro.problems import MatrixChainProblem, OptimalBSTProblem
from repro.problems.generators import random_bst


class TestIsQuadrangle:
    def test_bst_satisfies(self, clrs_bst):
        assert is_quadrangle(clrs_bst)

    def test_random_bsts_satisfy(self):
        for seed in range(5):
            assert is_quadrangle(random_bst(10, seed=seed))

    def test_matrix_chain_f_depends_on_split(self):
        """Matrix-chain f depends on k, so the QI precondition fails."""
        p = MatrixChainProblem([3, 7, 2, 9, 4, 11, 5])
        assert not is_quadrangle(p)

    def test_tiny_trivially_true(self):
        assert is_quadrangle(OptimalBSTProblem([1.0], [0.5, 0.5]))


class TestSolveKnuth:
    def test_clrs_bst(self, clrs_bst):
        assert solve_knuth(clrs_bst).value == pytest.approx(2.75)

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_sequential_on_random_bsts(self, seed):
        p = random_bst(15, seed=seed)
        a = solve_knuth(p)
        b = solve_sequential(p)
        assert a.value == pytest.approx(b.value)
        mask = np.isfinite(b.w)
        assert np.allclose(a.w[mask], b.w[mask])

    def test_zipf_weights(self):
        p = random_bst(12, seed=3, zipf=1.5)
        assert solve_knuth(p).value == pytest.approx(solve_sequential(p).value)

    def test_verify_rejects_matrix_chain(self):
        p = MatrixChainProblem([3, 7, 2, 9, 4, 11, 5])
        with pytest.raises(InvalidProblemError, match="quadrangle"):
            solve_knuth(p, check="verify")

    def test_trust_skips_check(self, clrs_bst):
        assert solve_knuth(clrs_bst, check="trust").value == pytest.approx(2.75)

    def test_bad_check_mode(self, clrs_bst):
        with pytest.raises(InvalidProblemError):
            solve_knuth(clrs_bst, check="maybe")

    def test_window_actually_shrinks_work(self):
        """Knuth windows examine O(n²) candidates vs Θ(n³) full range."""
        p = random_bst(20, seed=1)
        seq = solve_sequential(p)
        kn = solve_knuth(p)
        # Same split monotonicity that powers the speedup:
        s = kn.split
        n = p.n
        for i in range(n - 1):
            for j in range(i + 2, n):
                if s[i, j] != -1 and s[i, j + 1] != -1:
                    assert s[i, j] <= s[i, j + 1]
        assert kn.value == pytest.approx(seq.value)
