"""The fused kernel tier: bitwise identity with the slab kernels, the
scalar lowerings behind the optional numba engine, the ``fast_vdf``-style
packed range check with its exact two-channel fallback, and the
``kernel_impl`` axis on the public surface.

The heavy equivalence coverage (golden tables, hypothesis property
harness) carries a ``kernel_impl`` axis of its own; this file pins the
tier's own machinery — including the guarantee that a numba-less
environment resolves ``kernel_impl="auto"`` to the numpy engine and
still solves bitwise-identically (exercised in a subprocess with numba
imports blocked, so it holds even where numba *is* installed).
"""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core import plan_for, solve, solve_many
from repro.core.algebra import (
    FLOAT_EXACT_INT_MAX,
    get_algebra,
    lex_pack,
    lex_range_check,
    lex_unpack,
    list_algebras,
)
from repro.core.kernels import (
    compact_activate_tile,
    dense_activate_tile,
)
from repro.core.kernels_fused import (
    HAVE_NUMBA,
    _band_restrict,
    _banded_matmul_reduce,
    _identity_jit,
    _lex_exact_extend,
    _lex_exact_matmul,
    _lex_exact_pebble,
    _make_activate_kernel,
    _make_activate_pair_kernel,
    _make_banded_matmul_kernel,
    _make_matmul_kernel,
    _make_pebble_kernel,
    _matmul_reduce,
    _require_packable,
    _scalar_extend,
    _scalar_improves,
    fused_backend,
    fused_compact_activate_tile,
    fused_dense_activate_tile,
)
from repro.errors import InvalidProblemError
from repro.parallel.backends import (
    KERNEL_IMPLS,
    BackendError,
    resolve_kernel_impl,
)
from repro.problems.generators import random_generic, random_matrix_chain

_SRC_PATH = str(Path(__file__).resolve().parents[2] / "src")

METHODS = ["huang", "huang-banded", "huang-compact", "rytter"]


def _canon(w: np.ndarray) -> np.ndarray:
    """Make +inf comparable under array_equal (bitwise elsewhere)."""
    return np.nan_to_num(w, posinf=-1.0)


class TestFusedMatchesSlab:
    """fused ≡ slab bit-for-bit, per method, algebra and backend."""

    @pytest.mark.parametrize("method", METHODS)
    def test_methods_bitwise_equal(self, method):
        p = random_generic(12, seed=11)
        slab = solve(p, method=method, kernel_impl="slab")
        fused = solve(p, method=method, kernel_impl="fused")
        assert np.array_equal(_canon(slab.w), _canon(fused.w))
        assert slab.iterations == fused.iterations
        assert slab.value == fused.value

    @pytest.mark.parametrize("algebra", list_algebras())
    def test_algebras_bitwise_equal(self, algebra):
        p = random_matrix_chain(12, seed=5)
        slab = solve(p, method="huang", algebra=algebra, kernel_impl="slab")
        fused = solve(p, method="huang", algebra=algebra, kernel_impl="fused")
        assert np.array_equal(_canon(slab.w), _canon(fused.w))
        assert slab.value == fused.value

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_backends_bitwise_equal(self, backend):
        p = random_generic(10, seed=3)
        ref = solve(p, method="huang", kernel_impl="slab")
        out = solve(p, method="huang", kernel_impl="fused", backend=backend, tiles=3)
        assert np.array_equal(_canon(ref.w), _canon(out.w))
        assert ref.iterations == out.iterations

    def test_auto_resolves_to_fused(self):
        p = random_matrix_chain(8, seed=1)
        auto = solve(p, method="huang", kernel_impl="auto")
        fused = solve(p, method="huang", kernel_impl="fused")
        assert np.array_equal(_canon(auto.w), _canon(fused.w))

    @pytest.mark.parametrize("algebra", list_algebras())
    def test_activate_tiles_bitwise_equal_slab(self, algebra):
        """The fused activate lowerings compose the same (cell, weight)
        operand pairs as the slab transposes — cell-for-cell bitwise,
        for both dense sides and the compact pair."""
        alg = get_algebra(algebra)
        rng = np.random.default_rng(13)
        F = rng.integers(0, 50, size=(7, 7, 7)).astype(np.float64)
        w = rng.integers(0, 50, size=(7, 7)).astype(np.float64)
        w[0, 3] = alg.zero  # an unreached weight cell stays absorbing
        for tile in [("a", 1, 4), ("b", 2, 6)]:
            slab = dense_activate_tile(tile, F=F, w=w, algebra=alg)
            fused = fused_dense_activate_tile(tile, F=F, w=w, algebra=alg)
            assert np.array_equal(_canon(slab), _canon(fused)), tile
        s1, s2 = compact_activate_tile((1, 5), F=F, w=w, algebra=alg)
        f1, f2 = fused_compact_activate_tile((1, 5), F=F, w=w, algebra=alg)
        assert np.array_equal(_canon(s1), _canon(f1))
        assert np.array_equal(_canon(s2), _canon(f2))


class TestScalarLowerings:
    """The un-jitted loop bodies are the single source of scalar
    semantics — they must match the ufunc slab arithmetic exactly for
    every (extend, combine) pair the registered algebras use."""

    PAIRS = sorted(
        {
            (
                get_algebra(name).lowering().ext_name,
                get_algebra(name).lowering().comb_name,
            )
            for name in list_algebras()
        }
    )

    @pytest.mark.parametrize("ext_name,comb_name", PAIRS)
    def test_matmul_loop_matches_ufunc_reduce(self, ext_name, comb_name):
        alg = next(
            get_algebra(n)
            for n in list_algebras()
            if get_algebra(n).lowering().ext_name == ext_name
            and get_algebra(n).lowering().comb_name == comb_name
        )
        rng = np.random.default_rng(0)
        X = rng.integers(0, 50, size=(6, 4)).astype(np.float64)
        Y = rng.integers(0, 50, size=(4, 5)).astype(np.float64)
        X[0, :] = alg.zero  # unreached rows must stay absorbing
        kernel = _make_matmul_kernel(
            _scalar_extend(ext_name, _identity_jit),
            _scalar_improves(comb_name, _identity_jit),
            _identity_jit,
        )
        red = np.full((6, 5), alg.zero)
        kernel(X, Y, red)
        expect = alg.combine_ufunc.reduce(
            alg.extend_ufunc(X[:, :, None], Y[None, :, :]), axis=1
        )
        assert np.array_equal(_canon(red), _canon(expect))

    @pytest.mark.parametrize("ext_name,comb_name", PAIRS)
    def test_pebble_loop_matches_ufunc_reduce(self, ext_name, comb_name):
        alg = next(
            get_algebra(n)
            for n in list_algebras()
            if get_algebra(n).lowering().ext_name == ext_name
            and get_algebra(n).lowering().comb_name == comb_name
        )
        rng = np.random.default_rng(1)
        pwb = rng.integers(0, 30, size=(2, 3, 4, 4)).astype(np.float64)
        w = rng.integers(0, 30, size=(4, 4)).astype(np.float64)
        pwb[0, 0] = alg.zero
        kernel = _make_pebble_kernel(
            _scalar_extend(ext_name, _identity_jit),
            _scalar_improves(comb_name, _identity_jit),
            _identity_jit,
        )
        cand = np.full((2, 3), alg.zero)
        kernel(pwb, w, cand)
        expect = alg.select(
            alg.extend(pwb, w[None, None, :, :]), axis=(2, 3)
        )
        assert np.array_equal(_canon(cand), _canon(expect))

    @pytest.mark.parametrize("ext_name,comb_name", PAIRS)
    @pytest.mark.parametrize("d0,d1", [(0, 2), (-2, 0), (-1, 1)])
    def test_banded_matmul_loop_matches_masked_reduce(
        self, ext_name, comb_name, d0, d1
    ):
        """The clamped reduction window r in [p-d1, p-d0] must select
        exactly the in-band candidates a mask-then-reduce picks."""
        alg = next(
            get_algebra(n)
            for n in list_algebras()
            if get_algebra(n).lowering().ext_name == ext_name
            and get_algebra(n).lowering().comb_name == comb_name
        )
        rng = np.random.default_rng(4)
        Xf = rng.integers(0, 50, size=(6, 5)).astype(np.float64)
        Y = rng.integers(0, 50, size=(5, 7)).astype(np.float64)
        Xf[0, :] = alg.zero  # unreached rows must stay absorbing
        kernel = _make_banded_matmul_kernel(
            _scalar_extend(ext_name, _identity_jit),
            _scalar_improves(comb_name, _identity_jit),
            _identity_jit,
        )
        red = np.full((6, 7), alg.zero)
        kernel(Xf, Y, d0, d1, red)
        Ym = _band_restrict(Y, d0, d1, alg.zero)
        expect = alg.combine_ufunc.reduce(
            alg.extend_ufunc(Xf[:, :, None], Ym[None, :, :]), axis=1
        )
        assert np.array_equal(_canon(red), _canon(expect))

    @pytest.mark.parametrize("ext_name,comb_name", PAIRS)
    def test_activate_loop_matches_elementwise_extend(self, ext_name, comb_name):
        alg = next(
            get_algebra(n)
            for n in list_algebras()
            if get_algebra(n).lowering().ext_name == ext_name
        )
        rng = np.random.default_rng(5)
        X = rng.integers(0, 40, size=(2, 3, 4)).astype(np.float64)
        Y = rng.integers(0, 40, size=(3, 4)).astype(np.float64)
        X[0, 0] = alg.zero
        kernel = _make_activate_kernel(
            _scalar_extend(ext_name, _identity_jit), _identity_jit
        )
        out = np.empty_like(X)
        kernel(X, Y, out)
        assert np.array_equal(
            _canon(out), _canon(alg.extend_ufunc(X, Y[None, :, :]))
        )

    @pytest.mark.parametrize("ext_name,comb_name", PAIRS)
    def test_activate_pair_loop_matches_elementwise_extends(
        self, ext_name, comb_name
    ):
        alg = next(
            get_algebra(n)
            for n in list_algebras()
            if get_algebra(n).lowering().ext_name == ext_name
        )
        rng = np.random.default_rng(6)
        X = rng.integers(0, 40, size=(2, 3, 4)).astype(np.float64)
        Y1 = rng.integers(0, 40, size=(3, 4)).astype(np.float64)
        Y2 = rng.integers(0, 40, size=(2, 4)).astype(np.float64)
        X[1, 2] = alg.zero
        kernel = _make_activate_pair_kernel(
            _scalar_extend(ext_name, _identity_jit), _identity_jit
        )
        U1, U2 = np.empty_like(X), np.empty_like(X)
        kernel(X, Y1, Y2, U1, U2)
        assert np.array_equal(
            _canon(U1), _canon(alg.extend_ufunc(X, Y1[None, :, :]))
        )
        assert np.array_equal(
            _canon(U2), _canon(alg.extend_ufunc(X, Y2[:, None, :]))
        )

    def test_unknown_lowering_names_raise(self):
        with pytest.raises(InvalidProblemError, match="no scalar lowering"):
            _scalar_extend("multiply", _identity_jit)
        with pytest.raises(InvalidProblemError, match="no scalar lowering"):
            _scalar_improves("add", _identity_jit)


class TestMatmulReduce:
    def test_never_reshapes_strided_out(self):
        """The square tile passes non-contiguous triangular slices of
        ``acc`` as ``out`` — the combine must land in the backing array,
        which a reshape-induced copy would silently drop."""
        alg = get_algebra("min_plus")
        acc = alg.full((2, 4, 4, 4))
        out = acc[:, 2:, :2, 2]  # strided view, shape (2, 2, 2)
        assert not out.flags.c_contiguous
        Xf = np.arange(8, dtype=np.float64).reshape(4, 2)
        Y = np.ones((2, 2))
        _matmul_reduce(Xf, Y, out, alg, packed=False)
        expect = alg.combine_ufunc.reduce(
            alg.extend_ufunc(Xf[:, :, None], Y[None, :, :]), axis=1
        ).reshape(2, 2, 2)
        assert np.array_equal(acc[:, 2:, :2, 2], expect)

    def test_blocked_path_matches_unblocked(self, monkeypatch):
        import repro.core.kernels_fused as kf

        alg = get_algebra("max_plus")
        rng = np.random.default_rng(7)
        Xf = rng.normal(size=(37, 5))
        Y = rng.normal(size=(5, 11))
        big = np.full((37, 11), alg.zero)
        _matmul_reduce(Xf, Y, big, alg, packed=False)
        monkeypatch.setattr(kf, "CHUNK", 16)  # force many blocks
        small = np.full((37, 11), alg.zero)
        _matmul_reduce(Xf, Y, small, alg, packed=False)
        assert np.array_equal(big, small)


class TestBandedMatmulReduce:
    @pytest.mark.parametrize("d0,d1", [(0, 2), (-2, 0)])
    def test_matches_masked_full_reduce(self, d0, d1):
        """The per-diagonal numpy engine (and the JIT window loop) must
        equal the naive mask-the-plane-then-reduce formulation."""
        for name in list_algebras():
            if name == "lex_min_plus":
                continue  # packed payloads covered separately below
            alg = get_algebra(name)
            rng = np.random.default_rng(8)
            X = rng.integers(0, 60, size=(2, 4, 5)).astype(np.float64)
            Y = rng.integers(0, 60, size=(5, 6)).astype(np.float64)
            X[0, 1] = alg.zero  # whole unreached row stays absorbing
            out = np.full((2, 4, 6), alg.zero)
            _banded_matmul_reduce(X, Y, d0, d1, out, alg, packed=False)
            Ym = _band_restrict(Y, d0, d1, alg.zero)
            expect = alg.combine_ufunc.reduce(
                alg.extend_ufunc(X[..., :, None], Ym[None, None, :, :]), axis=-2
            )
            assert np.array_equal(_canon(out), _canon(expect)), name

    def test_never_reshapes_strided_out(self):
        """The banded square tile passes non-contiguous triangular
        slices of ``acc`` as ``out`` — the combine must land in the
        backing array, which a reshape-induced copy would silently
        drop."""
        alg = get_algebra("min_plus")
        acc = alg.full((2, 4, 4, 4))
        out = acc[:, 2:, :2, 2]  # strided view, shape (2, 2, 2)
        assert not out.flags.c_contiguous
        rng = np.random.default_rng(9)
        X = rng.integers(0, 60, size=(2, 2, 3)).astype(np.float64)
        Y = rng.integers(0, 60, size=(3, 2)).astype(np.float64)
        _banded_matmul_reduce(X, Y, 0, 2, out, alg, packed=False)
        Ym = _band_restrict(Y, 0, 2, alg.zero)
        expect = alg.combine_ufunc.reduce(
            alg.extend_ufunc(X[..., :, None], Ym[None, None, :, :]), axis=-2
        )
        assert np.array_equal(acc[:, 2:, :2, 2], expect)

    def test_out_of_range_packed_falls_back_exact(self):
        """packed=True with out-of-range inputs routes through the
        band-restricted exact two-channel matmul."""
        alg = get_algebra("lex_min_plus")
        big = np.nextafter(FLOAT_EXACT_INT_MAX, 0.0)
        X = np.array([[[big, lex_pack(1.0, 1)]]])
        Y = np.array([[big], [lex_pack(2.0, 1)]])
        out = np.full((1, 1, 1), alg.zero)
        _banded_matmul_reduce(X, Y, -1, 0, out, alg, packed=True)
        assert out[0, 0, 0] == lex_pack(3.0, 2)
        # the same candidates with the small one pushed out of band
        # must select the remaining (overflowing) candidate and raise
        out = np.full((1, 1, 1), alg.zero)
        with pytest.raises(InvalidProblemError, match="exactly-representable"):
            _banded_matmul_reduce(X, Y, 0, 0, out, alg, packed=True)


class TestLexFastVdf:
    """The fast_vdf idiom: range-check once, packed fast path when the
    arithmetic is exact, two-channel fallback otherwise."""

    def test_range_check_accepts_and_rejects(self):
        ok = np.array([1.0, np.inf, -5.0])
        assert lex_range_check(ok, np.array([2.0**40]))
        assert not lex_range_check(np.array([2.0**52]), np.array([2.0**52]))
        assert lex_range_check(np.array([np.inf, np.inf]))  # no finite mass

    def test_exact_matmul_matches_packed_in_range(self):
        rng = np.random.default_rng(2)
        alg = get_algebra("lex_min_plus")
        Xf = lex_pack(rng.integers(0, 100, (5, 3)), rng.integers(0, 9, (5, 3)))
        Y = lex_pack(rng.integers(0, 100, (3, 4)), rng.integers(0, 9, (3, 4)))
        Xf[0, :] = np.inf  # an unreached row
        packed = alg.combine_ufunc.reduce(
            alg.extend_ufunc(Xf[:, :, None], Y[None, :, :]), axis=1
        )
        exact = _lex_exact_matmul(Xf, Y)
        assert np.array_equal(_canon(exact), _canon(packed))

    def test_exact_pebble_matches_packed_in_range(self):
        rng = np.random.default_rng(3)
        alg = get_algebra("lex_min_plus")
        pwb = lex_pack(
            rng.integers(0, 50, (2, 3, 4, 4)), rng.integers(0, 9, (2, 3, 4, 4))
        )
        w = lex_pack(rng.integers(0, 50, (4, 4)), rng.integers(0, 9, (4, 4)))
        pwb[0, 0] = np.inf
        packed = alg.select(alg.extend(pwb, w[None, None, :, :]), axis=(2, 3))
        exact = _lex_exact_pebble(pwb, w)
        assert np.array_equal(_canon(exact), _canon(packed))

    def test_exact_extend_matches_packed_in_range(self):
        alg = get_algebra("lex_min_plus")
        rng = np.random.default_rng(12)
        X = lex_pack(
            rng.integers(0, 50, (2, 3, 4)), rng.integers(0, 9, (2, 3, 4))
        )
        Y = lex_pack(rng.integers(0, 50, (3, 4)), rng.integers(0, 9, (3, 4)))
        X[0, 0] = np.inf  # unreached cells stay absorbing
        packed = alg.extend_ufunc(X, Y[None, :, :])
        exact = _lex_exact_extend(X, Y[None, :, :])
        assert np.array_equal(_canon(exact), _canon(packed))

    def test_exact_extend_unpackable_raises(self):
        big = np.nextafter(FLOAT_EXACT_INT_MAX, 0.0)
        with pytest.raises(InvalidProblemError, match="exactly-representable"):
            _lex_exact_extend(np.array([big]), np.array([big]))

    def test_fallback_selected_result_stays_packable(self):
        """Inputs that trip the conservative range check but whose
        *selected* result is representable must succeed exactly: the
        reduce picks the small candidate, not the overflow one."""
        big = np.nextafter(FLOAT_EXACT_INT_MAX, 0.0)
        Xf = np.array([[big, lex_pack(3.0, 1)]])
        Y = np.array([[big], [lex_pack(4.0, 2)]])
        assert not lex_range_check(Xf, Y)
        out = _lex_exact_matmul(Xf, Y)
        c, s = lex_unpack(out)
        assert (c[0, 0], s[0, 0]) == (7.0, 3.0)

    def test_unpackable_result_raises(self):
        with pytest.raises(InvalidProblemError, match="exactly-representable"):
            _require_packable(np.array([2.0 * FLOAT_EXACT_INT_MAX]))
        # and through the matmul fallback itself
        big = np.nextafter(FLOAT_EXACT_INT_MAX, 0.0)
        Xf = np.array([[big]])
        Y = np.array([[big]])
        with pytest.raises(InvalidProblemError, match="exactly-representable"):
            _lex_exact_matmul(Xf, Y)

    def test_out_of_range_tile_falls_back_through_matmul_reduce(self):
        """packed=True with out-of-range inputs routes through the exact
        two-channel path inside ``_matmul_reduce``."""
        alg = get_algebra("lex_min_plus")
        big = np.nextafter(FLOAT_EXACT_INT_MAX, 0.0)
        Xf = np.array([[big, lex_pack(1.0, 1)]])
        Y = np.array([[big], [lex_pack(2.0, 1)]])
        out = np.full((1, 1), alg.zero)
        _matmul_reduce(Xf, Y, out, alg, packed=True)
        assert out[0, 0] == lex_pack(3.0, 2)


class TestKernelImplSurface:
    """``kernel_impl`` validates everywhere a backend name does, with
    the same error-message shape."""

    def test_resolve_defaults_and_validates(self):
        assert resolve_kernel_impl(None) == "fused"
        assert resolve_kernel_impl("auto") == "fused"
        assert resolve_kernel_impl("slab") == "slab"
        assert resolve_kernel_impl("fused") == "fused"
        with pytest.raises(BackendError, match="unknown kernel_impl 'jit'"):
            resolve_kernel_impl("jit")

    def test_solve_rejects_unknown(self):
        p = random_matrix_chain(5, seed=0)
        with pytest.raises(InvalidProblemError, match="unknown kernel_impl"):
            solve(p, method="huang", kernel_impl="vectorised")

    def test_solve_many_rejects_unknown(self):
        p = random_matrix_chain(5, seed=0)
        with pytest.raises(InvalidProblemError, match="unknown kernel_impl"):
            solve_many([p], kernel_impl="vectorised")

    def test_plan_for_rejects_unknown(self):
        p = random_matrix_chain(5, seed=0)
        with pytest.raises(InvalidProblemError, match="unknown kernel_impl"):
            plan_for(p, method="huang", kernel_impl="vectorised")

    def test_kernel_impls_is_single_sourced(self):
        assert KERNEL_IMPLS == ("slab", "fused", "auto")

    def test_solve_many_threads_kernel_impl_through(self):
        ps = [random_matrix_chain(6, seed=s) for s in range(3)]
        slab = solve_many(ps, method="huang", kernel_impl="slab")
        fused = solve_many(ps, method="huang", kernel_impl="fused")
        for a, b in zip(slab, fused):
            assert a.value == b.value
            assert np.array_equal(_canon(a.w), _canon(b.w))

    def test_plan_describe_shows_tiers(self):
        p = random_matrix_chain(8, seed=0)
        fused = plan_for(p, method="huang", kernel_impl="fused").describe()
        assert f"kernel_impl=fused[{fused_backend()}]" in fused
        assert "impl=fused" in fused
        assert "impl=slab" not in fused  # every dense step now lowers
        banded = plan_for(p, method="huang-banded", kernel_impl="fused").describe()
        assert "impl=fused" in banded  # banded square + activate lower
        assert "impl=slab" not in banded
        compact = plan_for(p, method="huang-compact", kernel_impl="fused").describe()
        assert "impl=fused" in compact  # the compact activate lowers
        assert "impl=slab" in compact  # compact square/pebble serve both tiers
        slab = plan_for(p, method="huang", kernel_impl="slab").describe()
        assert "kernel_impl=slab" in slab
        assert "impl=fused" not in slab


class TestNumpyFallbackIsolation:
    def test_auto_without_numba_resolves_numpy_and_matches(self):
        """In a fresh interpreter with numba imports *blocked* (not just
        absent), ``kernel_impl="auto"`` must resolve to the numpy fused
        engine and solve bitwise-identically to the slab tier."""
        code = (
            "import sys\n"
            "sys.modules['numba'] = None  # block the import outright\n"
            "from repro.core.kernels_fused import HAVE_NUMBA, fused_backend\n"
            "assert not HAVE_NUMBA\n"
            "assert fused_backend() == 'numpy'\n"
            "import numpy as np\n"
            "from repro.core import solve\n"
            "from repro.problems.generators import random_matrix_chain\n"
            "p = random_matrix_chain(10, seed=3)\n"
            "slab = solve(p, method='huang', kernel_impl='slab')\n"
            "auto = solve(p, method='huang', kernel_impl='auto')\n"
            "assert auto.value == slab.value\n"
            "assert auto.iterations == slab.iterations\n"
            "ws = np.nan_to_num(slab.w, posinf=-1.0)\n"
            "wa = np.nan_to_num(auto.w, posinf=-1.0)\n"
            "assert np.array_equal(ws, wa)\n"
            "print('numpy-fallback-ok')\n"
        )
        env = dict(os.environ, PYTHONPATH=_SRC_PATH)
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env=env,
            timeout=180,
        )
        assert proc.returncode == 0, proc.stderr
        assert "numpy-fallback-ok" in proc.stdout


@pytest.mark.slow
@pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed ([perf] extra)")
class TestNumbaEngine:
    """Compiled-engine equivalence — runs only on the [perf] CI leg.

    The full method × algebra matrix: the JIT engine has its own loop
    nests for the dense/rytter matmul, the banded window matmul, the
    pebble reduce and both activate lowerings, so every method routes
    at least one compiled kernel."""

    @pytest.mark.parametrize("method", METHODS)
    @pytest.mark.parametrize("algebra", list_algebras())
    def test_jit_solve_matches_slab(self, method, algebra):
        assert fused_backend() == "numba"
        p = random_matrix_chain(12, seed=9)
        slab = solve(p, method=method, algebra=algebra, kernel_impl="slab")
        fused = solve(p, method=method, algebra=algebra, kernel_impl="fused")
        assert np.array_equal(_canon(slab.w), _canon(fused.w))
        assert slab.value == fused.value
