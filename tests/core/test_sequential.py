"""Unit tests for the O(n³) sequential DP."""

import numpy as np
import pytest

from repro.core.sequential import (
    solve_sequential,
    work_count_sequential,
)
from repro.problems import GenericProblem, MatrixChainProblem
from repro.problems.generators import random_generic


class TestKnownValues:
    def test_clrs(self, clrs_chain):
        res = solve_sequential(clrs_chain)
        assert res.value == 15125.0
        assert res.n == 6

    def test_two_objects(self):
        p = MatrixChainProblem([7, 2, 9])
        assert solve_sequential(p).value == 7 * 2 * 9

    def test_single_object(self):
        p = GenericProblem(1, init=lambda i: 5.0, f=lambda i, k, j: 0.0)
        res = solve_sequential(p)
        assert res.value == 5.0
        assert res.split[0, 1] == -1


class TestTables:
    def test_w_table_structure(self, clrs_chain):
        res = solve_sequential(clrs_chain)
        n = res.n
        # Lower triangle + diagonal invalid.
        for i in range(n + 1):
            for j in range(i + 1):
                assert np.isinf(res.w[i, j]) or i == j  # all inf
        assert np.isinf(res.w[2, 2])

    def test_split_inside_interval(self, clrs_chain):
        res = solve_sequential(clrs_chain)
        n = res.n
        for i in range(n):
            for j in range(i + 2, n + 1):
                assert i < res.split[i, j] < j

    def test_bellman_consistency(self):
        """w(i,j) equals the best split everywhere (fixed-point check)."""
        from repro.core.reconstruct import verify_w_table

        p = random_generic(12, seed=4)
        res = solve_sequential(p)
        assert verify_w_table(p, res.w)

    def test_monotone_under_length_for_nonneg(self):
        """With all-zero init and positive f, longer intervals cost more."""
        p = MatrixChainProblem([3, 5, 2, 8, 4, 6])
        res = solve_sequential(p)
        for i in range(p.n - 1):
            for j in range(i + 2, p.n + 1):
                assert res.w[i, j] >= res.w[i, j - 1]


class TestBruteForceAgreement:
    def brute_force(self, problem):
        """Exponential enumeration of all trees (tiny n only)."""
        from functools import lru_cache

        @lru_cache(maxsize=None)
        def best(i, j):
            if j == i + 1:
                return problem.init_cost(i)
            return min(
                best(i, k) + best(k, j) + problem.split_cost(i, k, j)
                for k in range(i + 1, j)
            )

        return best(0, problem.n)

    @pytest.mark.parametrize("seed", range(8))
    def test_random_small(self, seed):
        p = random_generic(7, seed=seed)
        assert solve_sequential(p).value == pytest.approx(self.brute_force(p))


class TestWorkCount:
    def test_formula(self):
        # n(n² - 1)/6 = C(n+1, 3)
        assert work_count_sequential(2) == 1
        assert work_count_sequential(3) == 4
        assert work_count_sequential(6) == 35

    def test_matches_enumeration(self):
        n = 9
        count = sum(
            j - i - 1 for i in range(n) for j in range(i + 2, n + 1)
        )
        assert work_count_sequential(n) == count

    def test_invalid(self):
        with pytest.raises(ValueError):
            work_count_sequential(0)


class TestValidation:
    def test_rejects_negative_init(self):
        p = GenericProblem(3, init=lambda i: -1.0, f=lambda i, k, j: 0.0)
        with pytest.raises(Exception):
            solve_sequential(p)
