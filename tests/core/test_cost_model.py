"""Unit tests for the symbolic cost model (E1 support)."""

import math

import pytest

from repro.core.cost_model import (
    COST_MODELS,
    comparison_table,
    improvement_factor,
)


class TestFormulas:
    def test_all_expected_algorithms_present(self):
        assert set(COST_MODELS) == {
            "sequential",
            "optimal-parallel-a",
            "optimal-parallel-b",
            "rytter",
            "huang",
            "huang-banded",
        }

    def test_sequential(self):
        m = COST_MODELS["sequential"]
        assert m.time(10) == 1000 and m.processors(10) == 1
        assert m.pt_product(10) == 1000

    def test_optimal_parallel_products_match_sequential(self):
        n = 64
        seq = COST_MODELS["sequential"].pt_product(n)
        assert COST_MODELS["optimal-parallel-a"].pt_product(n) == seq
        assert COST_MODELS["optimal-parallel-b"].pt_product(n) == seq

    def test_rytter_product(self):
        n = 256
        lg = math.log2(n)
        assert COST_MODELS["rytter"].pt_product(n) == pytest.approx(n**6 * lg)

    def test_huang_products(self):
        n = 256
        lg = math.log2(n)
        assert COST_MODELS["huang"].pt_product(n) == pytest.approx(
            math.sqrt(n) * lg * n**5 / lg
        )
        assert COST_MODELS["huang-banded"].pt_product(n) == pytest.approx(
            math.sqrt(n) * n**3.5
        )

    def test_banded_product_is_n4(self):
        n = 81
        assert COST_MODELS["huang-banded"].pt_product(n) == pytest.approx(n**4)


class TestOrdering:
    def test_paper_ordering_at_large_n(self):
        """sequential == optimal < banded < huang-full < rytter."""
        n = 4096
        pts = {k: m.pt_product(n) for k, m in COST_MODELS.items()}
        assert pts["sequential"] == pts["optimal-parallel-a"]
        assert pts["sequential"] < pts["huang-banded"]
        assert pts["huang-banded"] < pts["huang"]
        assert pts["huang"] < pts["rytter"]

    def test_improvement_factor_is_n2_log(self):
        """The abstract's Θ(n² log n) improvement over Rytter."""
        for n in [64, 1024]:
            assert improvement_factor(n) == pytest.approx(
                n**2 * math.log2(n), rel=1e-9
            )

    def test_remaining_gap_is_n(self):
        """Section 7: the gap to the optimal PT product is narrowed to n."""
        n = 512
        gap = (
            COST_MODELS["huang-banded"].pt_product(n)
            / COST_MODELS["sequential"].pt_product(n)
        )
        assert gap == pytest.approx(n)


class TestTable:
    def test_renders(self):
        out = comparison_table([16, 64])
        assert "rytter" in out and "huang-banded" in out
        assert "n = 16" in out and "n = 64" in out

    def test_rows_sorted_by_product(self):
        out = comparison_table([128])
        lines = [line for line in out.splitlines() if "|" in line and "PT" not in line]
        names = [line.split("|")[0].strip() for line in lines]
        assert names[0] in ("sequential", "optimal-parallel-a", "optimal-parallel-b")
        assert names[-1] == "rytter"
