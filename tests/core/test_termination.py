"""Unit tests for termination policies."""

import pytest

from repro.core.termination import (
    FixedIterations,
    IterationState,
    UntilValue,
    WPWStable,
    WStable,
    default_schedule_length,
)


def state(it, w=False, pw=False, root=float("inf")):
    return IterationState(iteration=it, w_changed=w, pw_changed=pw, root_value=root)


class TestDefaultSchedule:
    def test_values(self):
        assert default_schedule_length(1) == 1
        assert default_schedule_length(4) == 4
        assert default_schedule_length(5) == 6
        assert default_schedule_length(36) == 12

    def test_invalid(self):
        with pytest.raises(ValueError):
            default_schedule_length(0)


class TestFixedIterations:
    def test_stops_at_count(self):
        p = FixedIterations(3)
        assert not p.should_stop(state(1))
        assert not p.should_stop(state(2))
        assert p.should_stop(state(3))

    def test_paper_schedule(self):
        assert FixedIterations.paper_schedule(10).count == 8

    def test_invalid(self):
        with pytest.raises(ValueError):
            FixedIterations(0)

    def test_describe(self):
        assert FixedIterations(5).describe() == "fixed(5)"


class TestWStable:
    def test_needs_consecutive_quiet(self):
        p = WStable(patience=2)
        p.reset()
        assert not p.should_stop(state(1, w=False))
        assert p.should_stop(state(2, w=False))

    def test_change_resets_streak(self):
        p = WStable(patience=2)
        p.reset()
        assert not p.should_stop(state(1, w=False))
        assert not p.should_stop(state(2, w=True))
        assert not p.should_stop(state(3, w=False))
        assert p.should_stop(state(4, w=False))

    def test_ignores_pw(self):
        p = WStable(patience=1)
        p.reset()
        assert p.should_stop(state(1, w=False, pw=True))

    def test_reset_clears(self):
        p = WStable(patience=2)
        p.should_stop(state(1, w=False))
        p.reset()
        assert not p.should_stop(state(2, w=False))

    def test_invalid_patience(self):
        with pytest.raises(ValueError):
            WStable(0)


class TestWPWStable:
    def test_needs_both_quiet(self):
        p = WPWStable(patience=1)
        p.reset()
        assert not p.should_stop(state(1, w=False, pw=True))
        assert not p.should_stop(state(2, w=True, pw=False))
        assert p.should_stop(state(3, w=False, pw=False))

    def test_flag(self):
        assert WPWStable.needs_pw_changes
        assert not WStable.needs_pw_changes


class TestUntilValue:
    def test_hits_target(self):
        p = UntilValue(10.0)
        assert not p.should_stop(state(1, root=float("inf")))
        assert not p.should_stop(state(2, root=11.0))
        assert p.should_stop(state(3, root=10.0))

    def test_relative_tolerance(self):
        p = UntilValue(1e12)
        assert p.should_stop(state(1, root=1e12 * (1 + 1e-10)))

    def test_describe(self):
        assert "until_value" in UntilValue(3.5).describe()


class TestRootStable:
    def test_counts_inf_plateau_as_unchanged(self):
        from repro.core.termination import RootStable

        p = RootStable(patience=2)
        p.reset()
        assert not p.should_stop(state(1, root=float("inf")))
        assert not p.should_stop(state(2, root=float("inf")))  # streak 1
        assert p.should_stop(state(3, root=float("inf")))  # streak 2 -> WRONG stop

    def test_resets_on_change(self):
        from repro.core.termination import RootStable

        p = RootStable(patience=2)
        p.reset()
        p.should_stop(state(1, root=10.0))
        p.should_stop(state(2, root=10.0))  # streak 1
        assert not p.should_stop(state(3, root=9.0))  # changed
        assert not p.should_stop(state(4, root=9.0))
        assert p.should_stop(state(5, root=9.0))

    def test_is_actually_unsafe_on_real_instance(self):
        """The negative control controls: it stops at +inf on an
        instance large enough for a multi-iteration root plateau."""
        import numpy as np

        from repro.core.banded import BandedSolver
        from repro.core.sequential import solve_sequential
        from repro.core.termination import RootStable
        from repro.problems.generators import random_matrix_chain

        prob = random_matrix_chain(24, seed=1)
        out = BandedSolver(prob).run(RootStable(patience=2), max_iterations=100)
        assert not np.isclose(out.value, solve_sequential(prob).value)

    def test_invalid_patience(self):
        from repro.core.termination import RootStable

        with pytest.raises(ValueError):
            RootStable(0)
