"""Unit tests for the sequential pw oracle and its agreement with the
converged solvers (the Section 4 correctness invariant)."""

import numpy as np
import pytest

from repro.core.exact_pw import exact_pw_table
from repro.core.huang import HuangSolver
from repro.core.sequential import solve_sequential
from repro.core.termination import WPWStable
from repro.errors import InvalidProblemError
from repro.problems import MatrixChainProblem
from repro.problems.generators import random_generic
from repro.trees import random_tree
from repro.trees.parse_tree import PartialTree


class TestBasics:
    def test_gap_equals_root_is_zero(self):
        p = random_generic(6, seed=0)
        pw = exact_pw_table(p)
        for i in range(6):
            for j in range(i + 1, 7):
                assert pw[i, j, i, j] == 0.0

    def test_invalid_quadruples_are_inf(self):
        p = random_generic(5, seed=1)
        pw = exact_pw_table(p)
        assert np.isinf(pw[0, 3, 2, 4])  # gap not nested
        assert np.isinf(pw[2, 4, 0, 1])  # gap outside

    def test_size_guard(self):
        p = random_generic(21, seed=0)
        with pytest.raises(InvalidProblemError):
            exact_pw_table(p)

    def test_equation_1a(self):
        """pw(i,j,i,k) <= f(i,k,j) + w(k,j) with equality when the tree
        realising w(i,j) splits at k (spot-check the <= direction)."""
        p = MatrixChainProblem([3, 5, 2, 7, 4])
        pw = exact_pw_table(p)
        w = solve_sequential(p).w
        n = p.n
        for i in range(n - 1):
            for k in range(i + 1, n):
                for j in range(k + 1, n + 1):
                    assert pw[i, j, i, k] <= p.split_cost(i, k, j) + w[k, j] + 1e-9


class TestAgainstPartialTrees:
    def test_pw_lower_bounds_every_partial_tree(self):
        """pw(i,j,p,q) <= PW(T) for any concrete partial tree T."""
        p = random_generic(8, seed=3)
        pw = exact_pw_table(p)
        for seed in range(5):
            t = random_tree(8, seed=seed)
            for node in t.nodes():
                pt = PartialTree(t, node.interval)
                val = pt.partial_weight(p)
                assert pw[0, 8, node.i, node.j] <= val + 1e-9

    def test_w_equals_min_pw_plus_w(self):
        """Equation (3) at the fixed point."""
        p = random_generic(7, seed=5)
        pw = exact_pw_table(p)
        w = solve_sequential(p).w
        n = p.n
        for i in range(n - 1):
            for j in range(i + 2, n + 1):
                best = min(
                    pw[i, j, a, b] + w[a, b]
                    for a in range(i, j)
                    for b in range(a + 1, j + 1)
                    if (a, b) != (i, j)
                )
                assert w[i, j] == pytest.approx(best)


class TestSolverAgreement:
    @pytest.mark.parametrize("seed", range(3))
    def test_huang_fixed_point_equals_oracle(self, seed):
        p = random_generic(7, seed=seed)
        s = HuangSolver(p)
        s.run(WPWStable(), max_iterations=60)
        oracle = exact_pw_table(p)
        assert np.array_equal(np.isfinite(s.pw), np.isfinite(oracle))
        mask = np.isfinite(oracle)
        assert np.allclose(s.pw[mask], oracle[mask])
