"""Unit tests for the PRAM-executed algorithm (E7 instrument)."""


import pytest

from repro.core.pram_ops import PRAMHuang
from repro.core.sequential import solve_sequential
from repro.core.termination import default_schedule_length
from repro.errors import InvalidProblemError
from repro.problems import MatrixChainProblem
from repro.problems.generators import random_generic


class TestExecution:
    def test_small_chain(self):
        p = MatrixChainProblem([2, 3, 4, 5])
        h = PRAMHuang(p)
        v = h.run()
        assert v == solve_sequential(p).value

    def test_random_instances(self):
        for seed in range(3):
            p = random_generic(5, seed=seed)
            assert PRAMHuang(p).run() == pytest.approx(solve_sequential(p).value)

    def test_size_guard(self):
        with pytest.raises(InvalidProblemError, match="harness"):
            PRAMHuang(random_generic(9, seed=0))


class TestCounts:
    @pytest.fixture(scope="class")
    def run5(self):
        p = random_generic(5, seed=1)
        h = PRAMHuang(p)
        h.run()
        return p, h

    def test_all_ops_charged(self, run5):
        _, h = run5
        assert set(h.op_costs) == {"initialize", "activate", "square", "pebble"}

    def test_activate_constant_time(self, run5):
        p, h = run5
        iters = default_schedule_length(p.n)
        # One super-step per iteration.
        assert h.op_costs["activate"].time == iters

    def test_activate_processors(self, run5):
        p, h = run5
        n = p.n
        triples = n * (n * n - 1) // 6
        assert h.op_costs["activate"].peak_processors == 2 * triples

    def test_square_log_time(self, run5):
        p, h = run5
        iters = default_schedule_length(p.n)
        # Widest quadruple: (0, n, p, p+1) with p = n-1 -> n + 1 slots.
        levels = 0
        w = p.n + 1
        while w > 1:
            w -= w // 2
            levels += 1
        # eval + reduce levels + commit per iteration.
        assert h.op_costs["square"].time == iters * (levels + 2)

    def test_square_processors_match_formula(self, run5):
        """Peak square processors == the counted composition candidates
        (the quantity the paper charges O(n⁵) for)."""
        from repro.core.huang import HuangSolver

        p, h = run5
        expected = HuangSolver(p).work_per_iteration()["square"]
        assert h.op_costs["square"].peak_processors == expected

    def test_pebble_processors_match_formula(self, run5):
        from repro.core.huang import HuangSolver

        p, h = run5
        expected = HuangSolver(p).work_per_iteration()["pebble"]
        assert h.op_costs["pebble"].peak_processors == expected

    def test_crew_discipline_held(self, run5):
        """The run completing at all proves exclusive writes; check the
        journal also saw concurrent reads (CREW, not EREW)."""
        _, h = run5
        assert h.op_costs["square"].reads > 0
