"""Unit tests for the paper's algorithm (full-table solver)."""

import numpy as np
import pytest

from repro.core.huang import HuangSolver, _count_square_compositions, _count_valid_quadruples
from repro.core.sequential import solve_sequential
from repro.core.termination import UntilValue, WPWStable, WStable
from repro.errors import ConvergenceError, InvalidProblemError
from repro.problems import MatrixChainProblem
from repro.problems.generators import random_bst, random_generic, random_matrix_chain


class TestInitialisation:
    def test_initial_tables(self, clrs_chain):
        s = HuangSolver(clrs_chain)
        n = clrs_chain.n
        assert s.w[0, 1] == 0.0
        assert np.isinf(s.w[0, n])
        assert s.pw[0, n, 0, n] == 0.0
        assert s.pw[1, 3, 1, 3] == 0.0
        assert np.isinf(s.pw[0, n, 0, 1])

    def test_memory_guard(self):
        p = random_generic(5, seed=0)
        with pytest.raises(InvalidProblemError, match="max_n"):
            HuangSolver(p, max_n=4)

    def test_reset_restores(self, clrs_chain):
        s = HuangSolver(clrs_chain)
        s.run()
        s.reset()
        assert np.isinf(s.w[0, clrs_chain.n])
        assert s.iterations_run == 0


class TestOperations:
    def test_activate_formula(self):
        """After one a-activate from the initial state, pw(i,j,i,k) =
        f(i,k,j) + init-costs where w(k,j) is a leaf."""
        p = MatrixChainProblem([2, 3, 4, 5])
        s = HuangSolver(p)
        s.a_activate()
        # pw(0,2,0,1) = f(0,1,2) + w(1,2) = 24 + 0
        assert s.pw[0, 2, 0, 1] == p.split_cost(0, 1, 2)
        # w(1,3) is inf at start, so pw(0,3,0,1) stays inf.
        assert np.isinf(s.pw[0, 3, 0, 1])

    def test_activate_is_monotone(self, clrs_chain):
        s = HuangSolver(clrs_chain)
        s.a_activate()
        before = s.pw.copy()
        s.a_activate()
        assert (s.pw <= before + 1e-15).all()

    def test_square_composes(self):
        p = MatrixChainProblem([2, 3, 4, 5])
        s = HuangSolver(p)
        s.a_activate()
        s.a_square()
        # pw(0,3,0,1) via pw(0,3,0,2) + pw(0,2,0,1) must now be finite
        # ... pw(0,3,0,2) requires w(2,3) (leaf) -> activate set it.
        expected = (p.split_cost(0, 2, 3) + 0.0) + (p.split_cost(0, 1, 2) + 0.0)
        assert s.pw[0, 3, 0, 1] == expected

    def test_square_identity_preserved(self, clrs_chain):
        s = HuangSolver(clrs_chain)
        s.a_activate()
        s.a_square()
        n = clrs_chain.n
        assert s.pw[0, n, 0, n] == 0.0

    def test_pebble_uses_pw_plus_w(self):
        p = MatrixChainProblem([2, 3, 4])
        s = HuangSolver(p)
        s.a_activate()
        s.a_pebble()
        # w(0,2) = pw(0,2,0,1) + w(0,1) = 24 + 0.
        assert s.w[0, 2] == 24.0

    def test_iterate_returns_change_flags(self, clrs_chain):
        s = HuangSolver(clrs_chain)
        w_c, pw_c = s.iterate()
        assert pw_c  # activate certainly changed pw
        assert w_c  # length-2 intervals got values
        # Run to the true fixed point, then one more iteration: no change.
        s.run(WPWStable(), max_iterations=100)
        w_c, pw_c = s.iterate()
        assert not w_c and not pw_c


class TestConvergence:
    def test_clrs_value(self, clrs_chain):
        out = HuangSolver(clrs_chain).run()
        assert out.value == 15125.0
        assert out.iterations == 6  # 2 * ceil(sqrt(6)) = 6

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_sequential_generic(self, seed):
        p = random_generic(10, seed=seed)
        assert HuangSolver(p).run().value == pytest.approx(solve_sequential(p).value)

    def test_matches_sequential_bst(self):
        p = random_bst(9, seed=7)
        assert HuangSolver(p).run().value == pytest.approx(solve_sequential(p).value)

    def test_full_w_table_converges(self):
        p = random_matrix_chain(11, seed=2)
        out = HuangSolver(p).run()
        ref = solve_sequential(p)
        mask = np.isfinite(ref.w)
        assert np.allclose(out.w[mask], ref.w[mask])
        assert np.array_equal(np.isfinite(out.w), mask)

    def test_w_decreases_monotonically(self, clrs_chain):
        s = HuangSolver(clrs_chain)
        prev = s.w.copy()
        for _ in range(4):
            s.iterate()
            assert (s.w <= prev + 1e-12).all()
            prev = s.w.copy()

    def test_trace_records(self, clrs_chain):
        out = HuangSolver(clrs_chain).run(trace=True)
        tr = out.trace
        assert tr.iterations == out.iterations
        finite_roots = [v for v in tr.root_values if np.isfinite(v)]
        # Root values never increase once finite.
        assert finite_roots == sorted(finite_roots, reverse=True)
        assert tr.w_finite == sorted(tr.w_finite)
        assert tr.first_correct_iteration(15125.0) is not None

    def test_until_value_policy(self, clrs_chain):
        ref = solve_sequential(clrs_chain).value
        out = HuangSolver(clrs_chain).run(UntilValue(ref), max_iterations=50)
        assert out.iterations <= 6
        assert out.value == ref

    def test_cap_raises(self, clrs_chain):
        s = HuangSolver(clrs_chain)
        with pytest.raises(ConvergenceError):
            s.run(UntilValue(-1.0), max_iterations=3)

    def test_w_stable_policy_stops_at_correct_value(self):
        for seed in range(3):
            p = random_generic(9, seed=seed)
            out = HuangSolver(p).run(WStable(), max_iterations=80)
            assert out.value == pytest.approx(solve_sequential(p).value)
            assert out.stopped_by.startswith("w_stable")


class TestWorkCounters:
    def test_quadruple_count_matches_enumeration(self):
        for n in [1, 2, 5, 8]:
            count = sum(
                1
                for i in range(n)
                for j in range(i + 1, n + 1)
                for p_ in range(i, j)
                for q in range(p_ + 1, j + 1)
            )
            assert _count_valid_quadruples(n) == count

    def test_square_count_matches_enumeration(self):
        for n in [2, 4, 6]:
            count = 0
            for i in range(n):
                for j in range(i + 1, n + 1):
                    for p_ in range(i, j):
                        for q in range(p_ + 1, j + 1):
                            count += (p_ - i + 1) + (j - q + 1)
            assert _count_square_compositions(n) == count

    def test_work_per_iteration_keys(self, clrs_chain):
        w = HuangSolver(clrs_chain).work_per_iteration()
        assert set(w) == {"activate", "square", "pebble"}
        assert w["square"] > w["pebble"] > w["activate"] > 0

    def test_paper_schedule(self, clrs_chain):
        assert HuangSolver(clrs_chain).paper_schedule_length() == 6
