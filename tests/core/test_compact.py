"""Unit tests for the Θ(n³)-storage compact banded solver."""

import numpy as np
import pytest

from repro.core.banded import BandedSolver
from repro.core.compact import CompactBandedSolver
from repro.core.sequential import solve_sequential
from repro.core.termination import UntilValue, WPWStable, WStable
from repro.errors import InvalidProblemError
from repro.problems.generators import random_bst, random_generic, random_matrix_chain
from repro.trees import complete_tree, skewed_tree, synthesize_instance, zigzag_tree


class TestLayout:
    def test_initial_state(self):
        p = random_generic(8, seed=0)
        s = CompactBandedSolver(p)
        # pw(i, j, i, j) = 0 lives at (o, d) = (0, 0).
        assert s.PB[0, 8, 0, 0] == 0.0
        assert s.PB[2, 5, 0, 0] == 0.0
        assert np.isinf(s.PB[0, 8, 1, 1])
        assert np.isinf(s.A1).all() and np.isinf(s.A2).all()

    def test_memory_is_cubic_not_quartic(self):
        p = random_matrix_chain(48, seed=0)
        compact = CompactBandedSolver(p)
        dense_cells = (48 + 1) ** 4
        assert compact.PB.size < dense_cells / 10

    def test_band_capped_by_n(self):
        p = random_generic(3, seed=0)
        s = CompactBandedSolver(p, band=100)
        assert s.band == 2  # n - 1

    def test_guards(self):
        p = random_generic(10, seed=0)
        with pytest.raises(InvalidProblemError):
            CompactBandedSolver(p, max_n=8)
        with pytest.raises(InvalidProblemError):
            CompactBandedSolver(p, band=-2)

    def test_invalid_slots_stay_inf(self):
        p = random_generic(9, seed=1)
        s = CompactBandedSolver(p)
        s.run()
        assert np.isinf(s.PB[s._invalid]).all()


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_sequential(self, seed):
        p = random_generic(13, seed=seed)
        ref = solve_sequential(p)
        out = CompactBandedSolver(p).run()
        assert out.value == pytest.approx(ref.value)
        assert np.allclose(
            np.nan_to_num(out.w, posinf=-1), np.nan_to_num(ref.w, posinf=-1)
        )

    def test_all_families(self):
        for gen, size in [(random_matrix_chain, 15), (random_bst, 12)]:
            p = gen(size, seed=2)
            assert CompactBandedSolver(p).run().value == pytest.approx(
                solve_sequential(p).value
            )

    @pytest.mark.parametrize("shape", [zigzag_tree, skewed_tree, complete_tree])
    def test_forced_shapes(self, shape):
        n = 26
        prob = synthesize_instance(shape(n), style="uniform_plus")
        assert CompactBandedSolver(prob).run().value == 2 * n - 1

    def test_dense_pw_equals_banded_solver(self):
        """At the joint fixed point the materialised table equals the
        dense banded solver's pw cell-for-cell."""
        p = random_generic(9, seed=7)
        c = CompactBandedSolver(p)
        c.run(WPWStable(), max_iterations=60)
        b = BandedSolver(p)
        b.run(WPWStable(), max_iterations=60)
        dense = c.to_dense_pw()
        assert np.array_equal(np.isfinite(dense), np.isfinite(b.pw))
        mask = np.isfinite(dense)
        assert np.allclose(dense[mask], b.pw[mask])

    def test_iteration_counts_match_banded(self):
        """Identical operator => identical convergence trajectory."""
        p = random_matrix_chain(16, seed=4)
        ref = solve_sequential(p).value
        it_c = CompactBandedSolver(p).run(UntilValue(ref), max_iterations=60).iterations
        it_b = BandedSolver(p).run(UntilValue(ref), max_iterations=60).iterations
        assert it_c == it_b

    def test_early_stopping(self):
        p = random_matrix_chain(20, seed=9)
        out = CompactBandedSolver(p).run(WStable(), max_iterations=80)
        assert out.value == pytest.approx(solve_sequential(p).value)

    def test_larger_than_dense_limit(self):
        """The whole point: n beyond the dense solvers' memory guard."""
        p = random_matrix_chain(80, seed=1)
        out = CompactBandedSolver(p).run(WStable(), max_iterations=60)
        assert out.value == pytest.approx(solve_sequential(p).value)

    def test_via_solve_api(self):
        from repro.core import solve

        p = random_generic(10, seed=0)
        assert solve(p, method="huang-compact").value == pytest.approx(
            solve(p, method="sequential").value
        )


class TestAccounting:
    def test_work_counters_match_banded(self):
        from repro.core.banded import BandedSolver

        p = random_generic(14, seed=0)
        assert (
            CompactBandedSolver(p).work_per_iteration()
            == BandedSolver(p).work_per_iteration()
        )

    def test_counters_without_dense_allocation(self):
        """Counters are available at sizes the dense solver refuses."""
        p = random_matrix_chain(120, seed=0)
        w = CompactBandedSolver(p).work_per_iteration()
        assert w["square"] > w["pebble"] > 0
