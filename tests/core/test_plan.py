"""Sweep-plan compilation: the one-time half of the plan/execute split.

The plan freezes schedule + tiles + commit-buffer shapes once per
solve; these tests pin that compilation is lazy and cached, that the
frozen tiles are exactly what the kernels would re-derive, that
``plan_for`` validates its inputs up front, and that executing through
a compiled plan is what ``iterate()`` actually does.
"""

import numpy as np
import pytest

from repro.core import plan_for, solve
from repro.core.banded import BandedSolver
from repro.core.huang import HuangSolver
from repro.core.plan import SweepPlan
from repro.core.rytter import RytterSolver
from repro.errors import InvalidProblemError
from repro.parallel.backends import ProcessBackend
from repro.parallel.shm import TableStore
from repro.problems.generators import random_generic, random_matrix_chain


class TestCompilation:
    def test_steps_follow_schedule(self):
        with HuangSolver(random_generic(8, seed=0)) as solver:
            plan = solver.plan
            assert plan.schedule == solver.SCHEDULE == ("activate", "square", "pebble")
            assert [step.kernel for step in plan] == [
                solver._kernels[name] for name in solver.SCHEDULE
            ]

    def test_plan_is_compiled_once_and_cached(self):
        with HuangSolver(random_generic(6, seed=1)) as solver:
            assert solver.plan is solver.plan
            solver.run()
            assert solver.plan is solver._plan

    def test_tiles_frozen_match_kernel_derivation(self):
        with BandedSolver(random_generic(10, seed=2), tiles=3) as solver:
            for name in solver.SCHEDULE:
                kernel = solver._kernels[name]
                assert solver.plan.step(name).tiles == tuple(
                    kernel.tiles(solver, solver.tiles)
                )

    def test_result_shapes_cover_single_slab_kernels(self):
        with HuangSolver(random_generic(7, seed=3), tiles=2) as solver:
            N = solver.n + 1
            square = solver.plan.step("square")
            for (lo, hi), shape in zip(square.tiles, square.result_shapes):
                assert shape == (hi - lo, N, N, N)
            pebble = solver.plan.step("pebble")
            for (lo, hi), shape in zip(pebble.tiles, pebble.result_shapes):
                assert shape == (hi - lo, N)

    def test_rytter_tiles_cover_matrix_rows(self):
        with RytterSolver(random_generic(6, seed=4), tiles=4) as solver:
            step = solver.plan.step("square")
            K = (solver.n + 1) ** 2
            assert step.tiles[0][0] == 0 and step.tiles[-1][1] == K

    def test_describe_mentions_kernels_and_tiles(self):
        with HuangSolver(random_generic(6, seed=5), tiles=2) as solver:
            text = solver.plan.describe()
        assert "HuangSolver" in text
        assert "DenseSquareKernel" in text
        assert "tiles=" in text and "plan:" in text

    def test_result_buffers_allocated_once(self):
        store = TableStore()
        try:
            with HuangSolver(random_generic(5, seed=6), tiles=2) as solver:
                step = solver.plan.step("pebble")
                metas = step.ensure_result_buffers(store)
                assert metas == step.ensure_result_buffers(store)
                assert step.result_array(0) is not None
        finally:
            store.close()


class TestOneOffExecute:
    def test_engine_execute_matches_plan_path(self):
        """KernelEngine.execute (the ad-hoc entry: fresh tiles, results
        by value, no store buffers) must commit the same tables the
        compiled plan path does — on the serial reference and on the
        store-backed process backend."""
        p = random_generic(6, seed=9)
        for backend_kwargs in ({}, {"backend": "process", "workers": 1, "tiles": 2}):
            with HuangSolver(p, **backend_kwargs) as planned, HuangSolver(
                p, **backend_kwargs
            ) as adhoc:
                planned.iterate()
                for name in adhoc.SCHEDULE:
                    adhoc._engine.execute(adhoc._kernels[name], adhoc)
                assert np.array_equal(
                    np.nan_to_num(planned.w, posinf=-1.0),
                    np.nan_to_num(adhoc.w, posinf=-1.0),
                )
                assert np.array_equal(
                    np.nan_to_num(planned.pw, posinf=-1.0),
                    np.nan_to_num(adhoc.pw, posinf=-1.0),
                )


class TestPlanFor:
    def test_compiles_without_running(self):
        plan = plan_for(random_matrix_chain(10, seed=0), method="huang-banded")
        assert isinstance(plan, SweepPlan)
        assert plan.method == "BandedSolver" and plan.n == 10

    def test_rejects_sequential_methods(self):
        with pytest.raises(InvalidProblemError, match="no sweep plan"):
            plan_for(random_matrix_chain(6, seed=0), method="sequential")

    def test_process_backend_plan_reports_store(self):
        plan = plan_for(
            random_matrix_chain(8, seed=0),
            method="huang",
            backend="process",
            workers=2,
        )
        assert plan.uses_store
        assert plan.start_method in ("fork", "spawn")
        assert "shared-memory store" in plan.describe()


class TestUpFrontValidation:
    def test_solve_rejects_unknown_backend_with_choices(self):
        with pytest.raises(InvalidProblemError, match="serial"):
            solve(random_matrix_chain(6, seed=0), method="huang", backend="gpu")

    def test_solve_rejects_unknown_start_method(self):
        with pytest.raises(InvalidProblemError, match="fork"):
            solve(
                random_matrix_chain(6, seed=0),
                method="huang",
                backend="process",
                start_method="threads",
            )

    def test_solve_rejects_start_method_without_process_backend(self):
        with pytest.raises(InvalidProblemError, match="process"):
            solve(
                random_matrix_chain(6, seed=0),
                method="huang",
                backend="serial",
                start_method="fork",
            )

    def test_solve_rejects_start_method_with_backend_instance(self):
        """A Backend instance already carries its start method; the
        error must say so instead of claiming the backend is not
        'process'."""
        be = ProcessBackend(workers=1, start_method="fork")
        try:
            with pytest.raises(InvalidProblemError, match="by name"):
                solve(
                    random_matrix_chain(6, seed=0),
                    method="huang",
                    backend=be,
                    start_method="fork",
                )
        finally:
            be.close()

    def test_solve_many_rejects_unknown_backend(self):
        from repro.core import solve_many

        with pytest.raises(InvalidProblemError, match="thread"):
            solve_many([random_matrix_chain(4, seed=0)], backend="gpu")

    def test_plan_for_validates_backend(self):
        with pytest.raises(InvalidProblemError, match="serial"):
            plan_for(random_matrix_chain(6, seed=0), method="huang", backend="gpu")


class TestWarmReuse:
    def test_store_and_backend_reused_across_solves(self):
        """solve(store=..., backend=<instance>): same pool, same table
        segments, results still bitwise-equal to serial."""
        p = random_matrix_chain(9, seed=7)
        ref = solve(p, method="huang")
        store = TableStore()
        be = ProcessBackend(workers=2)
        try:
            first = solve(p, method="huang", backend=be, store=store)
            pids = be.worker_pids()
            segments = store.segment_names()
            second = solve(p, method="huang", backend=be, store=store)
            assert be.worker_pids() == pids  # pool stayed warm
            assert store.segment_names() == segments  # tables reused in place
            for out in (first, second):
                assert np.array_equal(
                    np.nan_to_num(out.w, posinf=-1.0),
                    np.nan_to_num(ref.w, posinf=-1.0),
                )
        finally:
            be.close()
            store.close()
