"""Unit tests for the lockstep verifier (library-level)."""

import pytest

from repro.core.banded import BandedSolver
from repro.core.huang import HuangSolver
from repro.core.lockstep import run_lockstep
from repro.errors import InvalidProblemError
from repro.problems.generators import random_generic, random_matrix_chain
from repro.trees import complete_tree, synthesize_instance, zigzag_tree


class TestRunLockstep:
    def test_clean_on_random(self):
        for seed in range(3):
            rep = run_lockstep(random_generic(8, seed=seed))
            assert rep.ok
            assert rep.moves >= 1
            assert len(rep.pebbled_per_move) == rep.moves

    def test_clean_on_matrix_chain(self):
        rep = run_lockstep(random_matrix_chain(9, seed=4))
        assert rep.ok

    def test_banded_solver_also_certifies(self):
        p = random_generic(8, seed=5)
        rep = run_lockstep(p, solver=BandedSolver(p))
        assert rep.ok

    def test_zigzag_takes_more_moves_than_complete(self):
        n = 16
        zig = run_lockstep(synthesize_instance(zigzag_tree(n), style="uniform_plus"))
        comp = run_lockstep(
            synthesize_instance(complete_tree(n), style="uniform_plus")
        )
        assert zig.ok and comp.ok
        assert zig.moves > comp.moves

    def test_pebbled_monotone(self):
        rep = run_lockstep(random_generic(9, seed=7))
        assert rep.pebbled_per_move == sorted(rep.pebbled_per_move)
        # Every pebbled node is certified at every move (invariant (a)).
        assert rep.certified_w_per_move == rep.pebbled_per_move

    def test_requires_fresh_solver(self):
        p = random_generic(6, seed=0)
        s = HuangSolver(p)
        s.iterate()
        with pytest.raises(InvalidProblemError, match="fresh"):
            run_lockstep(p, solver=s)

    def test_violation_detection(self):
        """A sabotaged solver must produce violations, proving the
        checker actually checks."""
        p = random_generic(7, seed=3)

        class Sabotaged(HuangSolver):
            def a_square(self):
                return False  # never compose partial weights

        rep = run_lockstep(p, solver=Sabotaged(p), max_moves=10)
        assert not rep.ok
