"""Unit tests for the Section 5 banded solver."""

import numpy as np
import pytest

from repro.core.banded import BandedSolver, default_band
from repro.core.huang import HuangSolver
from repro.core.sequential import solve_sequential
from repro.core.termination import FixedIterations, UntilValue, WPWStable, WStable
from repro.errors import InvalidProblemError
from repro.problems.generators import random_bst, random_generic, random_matrix_chain
from repro.trees import complete_tree, synthesize_instance, zigzag_tree


class TestDefaults:
    def test_default_band(self):
        assert default_band(1) == 2
        assert default_band(4) == 4
        assert default_band(5) == 6
        assert default_band(25) == 10
        assert default_band(26) == 12

    def test_invalid(self):
        with pytest.raises(ValueError):
            default_band(0)
        p = random_generic(4, seed=0)
        with pytest.raises(InvalidProblemError):
            BandedSolver(p, band=-1)


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_sequential_generic(self, seed):
        p = random_generic(12, seed=seed)
        out = BandedSolver(p).run()
        ref = solve_sequential(p)
        assert out.value == pytest.approx(ref.value)
        mask = np.isfinite(ref.w)
        assert np.allclose(out.w[mask], ref.w[mask])

    def test_matches_on_all_families(self):
        for gen, size in [
            (random_matrix_chain, 14),
            (random_bst, 11),
        ]:
            p = gen(size, seed=3)
            assert BandedSolver(p).run().value == pytest.approx(
                solve_sequential(p).value
            )

    def test_complete_tree_requires_unbanded_activate(self):
        """Regression: the complete tree's root decomposition uses an
        activate cell whose size difference (~n/2) exceeds the band;
        the banded solver must keep such cells (Section 5 bands only
        the square-maintained weights)."""
        n = 25
        prob = synthesize_instance(complete_tree(n), style="uniform_plus")
        ref = solve_sequential(prob)
        out = BandedSolver(prob).run()
        assert out.value == ref.value == 2 * n - 1

    def test_zigzag_within_schedule(self):
        n = 30
        prob = synthesize_instance(zigzag_tree(n), style="uniform_plus")
        out = BandedSolver(prob).run()  # paper schedule 2*ceil(sqrt(n))
        assert out.value == 2 * n - 1

    def test_matches_full_solver_tables(self):
        """At the joint fixed point the banded w table equals the full
        solver's w table (pw differs off-band by design)."""
        p = random_generic(10, seed=8)
        full = HuangSolver(p)
        full.run(WPWStable(), max_iterations=60)
        band = BandedSolver(p)
        band.run(WPWStable(), max_iterations=60)
        assert np.allclose(
            np.nan_to_num(full.w, posinf=-1), np.nan_to_num(band.w, posinf=-1)
        )

    def test_band_mask_enforced_on_square_results(self):
        p = random_generic(12, seed=1)
        s = BandedSolver(p, band=3)
        s.run(FixedIterations(4))
        N = p.n + 1
        i, j, pp, q = np.ogrid[:N, :N, :N, :N]
        out_of_band = ((j - i) - (q - pp) > 3) & (i <= pp) & (pp < q) & (q <= j)
        # Off-band cells may only hold activate-created values
        # (gap = a child, i.e. p == i or q == j) or +inf.
        offband_vals = np.isfinite(s.pw) & out_of_band
        bad = offband_vals & ~((pp == i) | (q == j))
        assert not bad.any()


class TestSizeBand:
    def test_size_band_correct_on_schedule(self):
        p = random_generic(12, seed=5)
        out = BandedSolver(p, size_band=True).run()
        assert out.value == pytest.approx(solve_sequential(p).value)

    def test_size_band_rejects_early_stopping(self):
        p = random_generic(8, seed=0)
        s = BandedSolver(p, size_band=True)
        with pytest.raises(InvalidProblemError, match="size_band"):
            s.run(WStable())

    def test_size_band_allows_oracle(self):
        p = random_generic(8, seed=0)
        ref = solve_sequential(p).value
        out = BandedSolver(p, size_band=True).run(
            UntilValue(ref), max_iterations=60
        )
        assert out.value == pytest.approx(ref)

    def test_pebble_window_cells(self):
        p = random_generic(16, seed=0)
        s = BandedSolver(p)
        # Iteration 1/2 -> l=1: sizes in (0, 1]: n intervals.
        assert s.pebble_window_cells(1) == 16
        assert s.pebble_window_cells(2) == 16
        # l=2: sizes in (1, 4]: lengths 2..4.
        expected = sum(16 + 1 - L for L in (2, 3, 4))
        assert s.pebble_window_cells(3) == expected
        with pytest.raises(ValueError):
            s.pebble_window_cells(0)


class TestWorkCounters:
    def test_square_work_below_full(self):
        p = random_generic(20, seed=0)
        full = HuangSolver(p).work_per_iteration()
        band = BandedSolver(p).work_per_iteration()
        assert band["square"] < full["square"]
        assert band["activate"] == full["activate"]
        assert band["pebble"] <= full["pebble"]

    def test_band_zero_square_minimal(self):
        p = random_generic(10, seed=0)
        s = BandedSolver(p, band=0)
        w = s.work_per_iteration()
        # Band 0: only (i,j,i,j) targets, two trivial candidates each.
        quads = p.n * (p.n + 1) // 2
        assert w["square"] == 2 * quads

    def test_scaling_exponents(self):
        """Banded square work grows ~ n^3.5 (the Section 5 claim: Θ(n³)
        in-band quadruples × Θ(sqrt n) offsets each) while the full
        square grows ~ n^5."""
        import math

        from repro.core.huang import _count_square_compositions

        def banded_square(n):
            B = default_band(n)
            total = 0
            for span in range(1, n + 1):
                n_ij = n + 1 - span
                sub = 0
                for glen in range(max(1, span - B), span + 1):
                    for off in range(0, span - glen + 1):
                        sub += min(off, B) + 1 + min(span - glen - off, B) + 1
                total += n_ij * sub
            return total

        def exponent(f, n1, n2):
            return math.log(f(n2) / f(n1)) / math.log(n2 / n1)

        e_banded = exponent(banded_square, 64, 256)
        e_full = exponent(_count_square_compositions, 64, 256)
        assert e_banded == pytest.approx(3.5, abs=0.35)
        assert e_full == pytest.approx(5.0, abs=0.25)
