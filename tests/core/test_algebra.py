"""Unit tests for the selection-semiring algebra module: the registry,
the contract axioms each registered instance must satisfy, the encode/
decode hooks, and the pickling-by-name plumbing the process backend
relies on."""

import pickle

import numpy as np
import pytest

from repro.core.algebra import (
    LEX_SCALE,
    SelectionSemiring,
    get_algebra,
    lex_pack,
    lex_unpack,
    list_algebras,
    register_algebra,
)
from repro.errors import InvalidProblemError

ALL = list(list_algebras())


class TestRegistry:
    def test_expected_instances_registered(self):
        assert set(ALL) >= {"min_plus", "max_plus", "minimax", "maxmin", "lex_min_plus"}

    def test_get_by_name_and_instance_and_none(self):
        alg = get_algebra("minimax")
        assert alg.name == "minimax"
        assert get_algebra(alg) is alg
        assert get_algebra(None).name == "min_plus"

    def test_unknown_name_raises_invalid_problem(self):
        with pytest.raises(InvalidProblemError, match="unknown algebra"):
            get_algebra("frobnicate")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(InvalidProblemError, match="already registered"):
            register_algebra(get_algebra("min_plus"))

    def test_overwrite_reinstalls_same_instance(self):
        alg = get_algebra("min_plus")
        assert register_algebra(alg, overwrite=True) is alg
        assert get_algebra("min_plus") is alg

    def test_describe_mentions_ufuncs(self):
        d = get_algebra("maxmin").describe()
        assert "maximum" in d and "minimum" in d


class TestContractAxioms:
    """Sample-based checks of the four contract properties the
    DESIGN.md commit argument needs from every registered instance."""

    @pytest.fixture
    def samples(self, rng):
        vals = rng.uniform(-50.0, 50.0, size=64)
        return np.concatenate([vals, [0.0, 1.0, -1.0]])

    @pytest.mark.parametrize("name", ALL)
    def test_combine_idempotent(self, name, samples):
        alg = get_algebra(name)
        assert np.array_equal(alg.combine(samples, samples), samples)

    @pytest.mark.parametrize("name", ALL)
    def test_combine_commutative_and_selects(self, name, samples, rng):
        alg = get_algebra(name)
        other = rng.permutation(samples)
        ab = alg.combine(samples, other)
        assert np.array_equal(ab, alg.combine(other, samples))
        # A selection always returns one of its arguments, exactly.
        assert np.all((ab == samples) | (ab == other))

    @pytest.mark.parametrize("name", ALL)
    def test_zero_is_combine_identity_and_extend_absorber(self, name, samples):
        alg = get_algebra(name)
        z = np.full_like(samples, alg.zero)
        assert np.array_equal(alg.combine(samples, z), samples)
        assert np.array_equal(alg.extend(samples, z), z)

    @pytest.mark.parametrize("name", ALL)
    def test_one_is_extend_identity(self, name, samples):
        alg = get_algebra(name)
        e = np.full_like(samples, alg.one)
        assert np.array_equal(alg.extend(samples, e), samples)

    @pytest.mark.parametrize("name", ALL)
    def test_extend_distributes_over_combine(self, name, rng):
        alg = get_algebra(name)
        a, b, c = (rng.uniform(-20.0, 20.0, size=128) for _ in range(3))
        lhs = alg.extend(a, alg.combine(b, c))
        rhs = alg.combine(alg.extend(a, b), alg.extend(a, c))
        # min/max selections and monotone extends make this exact for
        # floats (for +, both sides are a+b or a+c verbatim).
        assert np.array_equal(lhs, rhs)

    @pytest.mark.parametrize("name", ALL)
    def test_extend_monotone(self, name, rng):
        alg = get_algebra(name)
        a = rng.uniform(-20.0, 20.0, size=128)
        b = rng.uniform(-20.0, 20.0, size=128)
        x = rng.uniform(-20.0, 20.0, size=128)
        best = alg.combine(a, b)  # the selected (better-or-equal) operand
        rest = np.where(best == a, b, a)  # the rejected one
        # Monotonicity: extending the rejected operand can never beat
        # extending the selected one.
        assert not alg.improves(alg.extend(x, rest), alg.extend(x, best)).any()

    @pytest.mark.parametrize("name", ALL)
    def test_reachable_semantics(self, name):
        alg = get_algebra(name)
        arr = np.array([alg.zero, alg.one, 3.0])
        assert list(alg.reachable(arr)) == [False, True, True]


class TestMergeInplace:
    def test_merge_reports_and_applies_improvement(self):
        alg = get_algebra("min_plus")
        view = np.array([5.0, 2.0, np.inf])
        assert alg.merge_inplace(view, np.array([6.0, 1.0, np.inf])) is True
        assert list(view) == [5.0, 1.0, np.inf]

    def test_merge_no_improvement(self):
        alg = get_algebra("max_plus")
        view = np.array([5.0, 2.0])
        assert alg.merge_inplace(view, np.array([4.0, 2.0])) is False
        assert list(view) == [5.0, 2.0]

    def test_check_false_merges_without_reporting(self):
        alg = get_algebra("min_plus")
        view = np.array([5.0])
        assert alg.merge_inplace(view, np.array([1.0]), check=False) is False
        assert view[0] == 1.0


class TestEncodeDecode:
    def test_min_plus_hooks_are_identity(self):
        alg = get_algebra("min_plus")
        F = np.array([[1.0, np.inf], [2.0, 3.0]])
        assert alg.encode_f(F) is F
        assert alg.decode(7.5) == 7.5

    @pytest.mark.parametrize("name", ["max_plus", "maxmin"])
    def test_invalid_markers_become_zero(self, name):
        alg = get_algebra(name)
        F = np.array([1.0, np.inf, 4.0])
        enc = alg.encode_f(F)
        assert enc[1] == alg.zero and enc[0] == 1.0 and enc[2] == 4.0

    def test_lex_pack_unpack_roundtrip_integer_costs(self):
        cost = np.array([0.0, 7.0, 123456.0])
        splits = np.array([0, 3, 4095])
        packed = lex_pack(cost, splits)
        c, s = lex_unpack(packed)
        assert np.array_equal(c, cost) and np.array_equal(s, splits)

    def test_lex_encode_f_adds_one_split(self):
        alg = get_algebra("lex_min_plus")
        F = np.array([5.0, np.inf])
        enc = alg.encode_f(F)
        assert enc[0] == 5.0 * LEX_SCALE + 1.0 and enc[1] == np.inf

    def test_lex_decode_recovers_primary_cost(self):
        alg = get_algebra("lex_min_plus")
        assert alg.decode(lex_pack(42.0, 17)) == 42.0
        assert alg.decode(np.inf) == np.inf

    def test_lex_refuses_fractional_costs(self):
        alg = get_algebra("lex_min_plus")
        with pytest.raises(InvalidProblemError, match="integer-valued"):
            alg.encode_f(np.array([1.5, np.inf]))
        with pytest.raises(InvalidProblemError, match="integer-valued"):
            alg.encode_init(np.array([0.25]))

    def test_lex_refuses_fractional_cost_problems_end_to_end(self):
        from repro.core import solve
        from repro.problems.generators import random_polygon

        with pytest.raises(InvalidProblemError, match="integer-valued"):
            solve(random_polygon(6, seed=1), algebra="lex_min_plus")

    def test_lex_refuses_oversized_instances(self):
        alg = get_algebra("lex_min_plus")
        with pytest.raises(InvalidProblemError, match="split counts"):
            alg.encode_init(np.zeros(5000))


class TestPickling:
    @pytest.mark.parametrize("name", ALL)
    def test_pickle_roundtrip_is_registry_instance(self, name):
        alg = get_algebra(name)
        clone = pickle.loads(pickle.dumps(alg))
        assert clone is alg

    def test_custom_unregistered_instances_are_rejected_by_name_lookup(self):
        custom = SelectionSemiring(
            name="unregistered-test-algebra",
            combine_ufunc=np.minimum,
            extend_ufunc=np.add,
            improves_ufunc=np.less,
            argselect_fn=np.argmin,
            zero=np.inf,
            one=0.0,
        )
        # Usable directly...
        assert get_algebra(custom) is custom
        # ...but pickling goes through the registry, which doesn't know it.
        with pytest.raises(InvalidProblemError):
            pickle.loads(pickle.dumps(custom))
