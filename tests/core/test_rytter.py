"""Unit tests for the Rytter baseline."""

import math

import numpy as np
import pytest

from repro.core.rytter import RytterSolver, rytter_schedule_length
from repro.core.sequential import solve_sequential
from repro.core.termination import UntilValue
from repro.errors import InvalidProblemError
from repro.problems.generators import random_generic, random_matrix_chain
from repro.trees import synthesize_instance, zigzag_tree


class TestSchedule:
    def test_length(self):
        assert rytter_schedule_length(1) == 3
        assert rytter_schedule_length(2) == 3
        assert rytter_schedule_length(8) == 5
        assert rytter_schedule_length(9) == 6

    def test_invalid(self):
        with pytest.raises(ValueError):
            rytter_schedule_length(0)

    def test_default_max_n(self):
        p = random_generic(5, seed=0)
        with pytest.raises(InvalidProblemError):
            RytterSolver(p, max_n=4)


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_sequential(self, seed):
        p = random_generic(10, seed=seed)
        out = RytterSolver(p).run()
        assert out.value == pytest.approx(solve_sequential(p).value)

    def test_full_table(self):
        p = random_matrix_chain(12, seed=1)
        out = RytterSolver(p).run()
        ref = solve_sequential(p)
        mask = np.isfinite(ref.w)
        assert np.allclose(out.w[mask], ref.w[mask])

    def test_zigzag_in_log_iterations(self):
        """The doubling square defeats the zigzag: O(log n) iterations
        even on the paper's worst-case shape."""
        n = 20
        prob = synthesize_instance(zigzag_tree(n), style="uniform_plus")
        ref = solve_sequential(prob).value
        out = RytterSolver(prob).run(UntilValue(ref), max_iterations=30)
        assert out.iterations <= math.ceil(math.log2(n)) + 2

    def test_schedule_reaches_w_fixed_point(self):
        """After the default schedule the w table is final: one more
        phase changes no w entry (pw entries may keep refining — the [8]
        guarantee is about the costs, and activate keeps seeding new pw
        base values as late pebbles land)."""
        p = random_generic(12, seed=9)
        s = RytterSolver(p)
        out = s.run()
        assert out.value == pytest.approx(solve_sequential(p).value)
        w_c, _pw_c = s.iterate()
        assert not w_c

    def test_never_more_iterations_than_huang(self):
        """Phase-for-phase, the full square dominates the incremental
        square, so Rytter's pw is pointwise <= Huang's after the same
        number of iterations."""
        from repro.core.huang import HuangSolver

        p = random_generic(9, seed=2)
        r = RytterSolver(p)
        h = HuangSolver(p)
        for _ in range(3):
            r.iterate()
            h.iterate()
            assert (r.pw <= h.pw + 1e-12).all()
            assert (r.w <= h.w + 1e-12).all()


class TestWorkCounters:
    def test_square_dominates(self):
        p = random_generic(10, seed=0)
        w = RytterSolver(p).work_per_iteration()
        assert w["square"] > w["pebble"]

    def test_square_count_matches_enumeration(self):
        n = 6
        count = 0
        for i in range(n):
            for j in range(i + 1, n + 1):
                for p_ in range(i, j):
                    for q in range(p_ + 1, j + 1):
                        count += (p_ - i + 1) * (j - q + 1)
        p = random_generic(n, seed=0)
        assert RytterSolver(p).work_per_iteration()["square"] == count

    def test_square_theta_n6(self):
        """The counted square candidates approach exponent 6 (slowly —
        the lattice has strong boundary effects at small n)."""

        def count(n):
            total = 0
            for span in range(1, n + 1):
                n_ij = n + 1 - span
                sub = 0
                for glen in range(1, span + 1):
                    for off in range(0, span - glen + 1):
                        sub += (off + 1) * ((span - glen - off) + 1)
                total += n_ij * sub
            return total

        e = math.log(count(128) / count(64)) / math.log(2)
        assert e == pytest.approx(6.0, abs=0.25)
        # And the small-n counts match the solver's own accounting.
        p = random_generic(8, seed=0)
        assert RytterSolver(p).work_per_iteration()["square"] == count(8)
