"""Kernel-engine equivalence: every method × backend × tiling commits
bitwise-identical tables and iteration counts to the serial reference.

This is the refactor's safety net: the five iterative solvers are thin
kernel-set declarations over one engine, so a single suite pins down
that no (backend, tiles) combination can change a result — the CREW
guarantee made executable.
"""

import numpy as np
import pytest

from repro.core import solve
from repro.core.banded import BandedSolver
from repro.core.compact import CompactBandedSolver
from repro.core.huang import HuangSolver
from repro.core.hybrid import HybridSolver
from repro.core.kernels import KernelEngine
from repro.core.lockstep import run_lockstep
from repro.core.rytter import RytterSolver
from repro.core.sequential import solve_sequential
from repro.parallel.backends import SerialBackend
from repro.problems.generators import random_generic, random_matrix_chain

BACKENDS = ["serial", "thread", "process"]

# (method, solver class, problem size) — sizes chosen so the full
# matrix of methods × backends × tilings stays fast while still
# exercising uneven tile splits and multi-class pebbling.
CASES = [
    ("huang", HuangSolver, 10),
    ("huang-banded", BandedSolver, 12),
    ("huang-compact", CompactBandedSolver, 14),
    ("rytter", RytterSolver, 9),
]


def _canon(w: np.ndarray) -> np.ndarray:
    """Make +inf comparable under array_equal (bitwise elsewhere)."""
    return np.nan_to_num(w, posinf=-1.0)


class TestMethodBackendEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("method,cls,n", CASES, ids=[c[0] for c in CASES])
    def test_bitwise_equal_to_serial_reference(self, method, cls, n, backend):
        p = random_generic(n, seed=11)
        ref = cls(p).run()  # serial, single tile: the reference path
        with cls(p, backend=backend, tiles=3) as solver:
            out = solver.run()
        assert np.array_equal(_canon(out.w), _canon(ref.w))
        assert out.iterations == ref.iterations
        assert out.value == solve_sequential(p).value or out.value == pytest.approx(
            solve_sequential(p).value
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("method,cls,n", CASES, ids=[c[0] for c in CASES])
    def test_solve_facade_routes_backend(self, method, cls, n, backend):
        p = random_matrix_chain(n, seed=7)
        ref = solve(p, method=method)
        out = solve(p, method=method, backend=backend, tiles=4)
        assert np.array_equal(_canon(out.w), _canon(ref.w))
        assert out.iterations == ref.iterations

    @pytest.mark.parametrize("tiles", [1, 2, 5, 16])
    def test_any_tiling_is_exact(self, tiles):
        """More tiles than rows, uneven splits — all bitwise identical."""
        p = random_generic(8, seed=3)
        ref = HuangSolver(p).run()
        with HuangSolver(p, backend="thread", tiles=tiles) as s:
            out = s.run()
        assert np.array_equal(_canon(out.w), _canon(ref.w))

    def test_size_band_window_through_engine(self):
        p = random_generic(12, seed=9)
        ref = BandedSolver(p, size_band=True).run()
        with BandedSolver(p, size_band=True, backend="process", tiles=3) as s:
            out = s.run()
        assert np.array_equal(_canon(out.w), _canon(ref.w))
        assert out.iterations == ref.iterations

    def test_hybrid_inherits_engine(self):
        p = random_matrix_chain(12, seed=2)
        ref = HybridSolver(p).run()
        with HybridSolver(p, backend="thread", tiles=3) as s:
            out = s.run()
        assert np.array_equal(_canon(out.w), _canon(ref.w))
        assert out.value == pytest.approx(solve_sequential(p).value)

    def test_compact_matches_banded_dense_pw_under_backend(self):
        """The cross-layout invariant survives tiled execution."""
        p = random_generic(10, seed=5)
        b = BandedSolver(p, backend="thread", tiles=3)
        c = CompactBandedSolver(p, backend="thread", tiles=4)
        for _ in range(3):
            b.iterate()
            c.iterate()
        dense = c.to_dense_pw()
        mask = np.isfinite(dense)
        assert np.array_equal(mask, np.isfinite(b.pw))
        assert np.allclose(dense[mask], b.pw[mask])
        b.close()
        c.close()


class TestLockstepThroughEngine:
    """The Section 4 machine-checked proof must hold on every backend —
    the lockstep validator drives the solver one kernel super-step at a
    time, so it exercises the engine exactly as the paper's schedule
    does."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_lockstep_certifies_on_all_backends(self, backend):
        p = random_generic(8, seed=1)
        with HuangSolver(p, backend=backend, tiles=3) as solver:
            rep = run_lockstep(p, solver=solver)
        assert rep.ok

    def test_lockstep_banded_through_engine(self):
        p = random_generic(8, seed=5)
        with BandedSolver(p, backend="thread", tiles=2) as solver:
            rep = run_lockstep(p, solver=solver)
        assert rep.ok


class TestKernelEngine:
    def test_default_tiles_serial(self):
        engine = KernelEngine("serial")
        assert engine.tiles == 1
        engine.close()

    def test_default_tiles_follow_workers(self):
        engine = KernelEngine("thread", workers=3)
        assert engine.tiles == 3
        engine.close()

    def test_adopts_backend_instance(self):
        be = SerialBackend()
        engine = KernelEngine(be, tiles=2)
        assert engine.backend is be
        assert engine.tiles == 2

    def test_rejects_bad_tiles(self):
        with pytest.raises(ValueError, match="tiles"):
            KernelEngine("serial", tiles=0)

    def test_solver_close_idempotent(self):
        p = random_generic(5, seed=0)
        s = HuangSolver(p, backend="thread", tiles=2)
        s.run()
        s.close()
        s.close()

    def test_single_operation_override_still_dispatches(self):
        """Subclasses can still replace one named operation — the hook
        the lockstep sabotage test and solver variants rely on."""
        p = random_generic(6, seed=4)

        calls = []

        class Instrumented(HuangSolver):
            def a_square(self):
                calls.append(self.iterations_run)
                return super().a_square()

        s = Instrumented(p)
        s.iterate()
        assert calls == [0]
