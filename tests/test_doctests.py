"""The public-API docstring examples are executable documentation;
this keeps them true in the tier-1 lane (CI additionally runs
``pytest --doctest-modules src/repro/core/api.py`` standalone)."""

import doctest

import pytest

import repro.core.api
import repro.service.cache


@pytest.mark.parametrize(
    "module",
    [repro.core.api, repro.service.cache],
    ids=lambda m: m.__name__,
)
def test_docstring_examples_run(module):
    result = doctest.testmod(module)
    assert result.attempted > 0, f"{module.__name__} lost its doctests"
    assert result.failed == 0
