"""Integration: every solver agrees with every other on every family."""

import numpy as np
import pytest

from repro.core import solve
from repro.core.knuth import solve_knuth
from repro.core.sequential import solve_sequential
from repro.problems.generators import (
    random_bst,
    random_generic,
    random_matrix_chain,
    random_polygon,
)

PARALLEL_METHODS = ("huang", "huang-banded", "rytter")


def w_tables_equal(a, b):
    return np.allclose(np.nan_to_num(a, posinf=-1.0), np.nan_to_num(b, posinf=-1.0))


class TestAllFamiliesAllSolvers:
    @pytest.mark.parametrize(
        "family,make",
        [
            ("chain", lambda s: random_matrix_chain(12, seed=s)),
            ("bst", lambda s: random_bst(10, seed=s)),
            ("polygon", lambda s: random_polygon(12, seed=s)),
            ("polygon-product", lambda s: random_polygon(12, seed=s, rule="product")),
            ("generic", lambda s: random_generic(12, seed=s)),
        ],
    )
    @pytest.mark.parametrize("seed", [0, 1])
    def test_value_and_tables_agree(self, family, make, seed):
        p = make(seed)
        ref = solve_sequential(p)
        for method in PARALLEL_METHODS:
            out = solve(p, method=method)
            assert out.value == pytest.approx(ref.value), (family, method)
            assert w_tables_equal(out.w, ref.w), (family, method)

    def test_knuth_on_bsts(self):
        for seed in range(4):
            p = random_bst(13, seed=seed)
            assert solve_knuth(p).value == pytest.approx(solve_sequential(p).value)


class TestTreesAgree:
    @pytest.mark.parametrize("method", ("sequential",) + PARALLEL_METHODS)
    def test_reconstructed_tree_realises_value(self, method):
        p = random_matrix_chain(10, seed=9)
        out = solve(p, method=method, reconstruct=True)
        assert out.tree.weight(p) == pytest.approx(out.value)

    def test_unique_optimum_same_tree_everywhere(self):
        """On an instance with a forced unique optimum, every solver
        reconstructs the same tree."""
        from repro.trees import random_tree, synthesize_instance

        target = random_tree(10, seed=21)
        p = synthesize_instance(target, style="uniform_plus")
        trees = [
            solve(p, method=m, reconstruct=True).tree
            for m in ("sequential",) + PARALLEL_METHODS
        ]
        for t in trees:
            assert t == target


class TestEdgeSizes:
    @pytest.mark.parametrize("method", PARALLEL_METHODS)
    def test_n1(self, method):
        p = random_generic(1, seed=0)
        out = solve(p, method=method)
        assert out.value == pytest.approx(p.init_cost(0))

    @pytest.mark.parametrize("method", PARALLEL_METHODS)
    def test_n2(self, method):
        p = random_generic(2, seed=0)
        expected = p.init_cost(0) + p.init_cost(1) + p.split_cost(0, 1, 2)
        assert solve(p, method=method).value == pytest.approx(expected)

    @pytest.mark.parametrize("method", PARALLEL_METHODS)
    def test_n3(self, method):
        p = random_generic(3, seed=1)
        assert solve(p, method=method).value == pytest.approx(
            solve_sequential(p).value
        )
