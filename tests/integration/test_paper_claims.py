"""Integration: the paper's quantitative claims at test scale.

Each experiment (E1–E8, see DESIGN.md) has a full benchmark in
benchmarks/; these tests pin the *shape* of every claim at sizes small
enough for CI, so a regression in any reproduced result fails the suite
and not just the benchmark report.
"""

import math

import numpy as np
import pytest

from repro.analysis.average_case import fit_log, fit_sqrt, paper_T
from repro.analysis.montecarlo import game_move_statistics
from repro.analysis.worstcase import worst_case_series
from repro.core.cost_model import improvement_factor
from repro.core.banded import BandedSolver
from repro.core.huang import HuangSolver
from repro.core.rytter import RytterSolver
from repro.core.sequential import solve_sequential
from repro.core.termination import UntilValue, WStable
from repro.pebbling import GameTree, PebbleGame, moves_upper_bound
from repro.problems.generators import random_matrix_chain
from repro.trees import complete_tree, skewed_tree, synthesize_instance, zigzag_tree


class TestE1ProcessorTimeProduct:
    def test_headline_improvement(self):
        """Abstract: Θ(n² log n) improvement over Rytter in PT product."""
        assert improvement_factor(256) == pytest.approx(256**2 * 8)

    def test_counted_work_ordering(self):
        """Counted per-run work (candidates × iterations) orders the
        implemented algorithms the way the formulas say: banded < full
        huang < rytter, all above sequential."""
        n = 20
        p = random_matrix_chain(n, seed=0)
        seq_work = n * (n * n - 1) // 6
        iters_h = 2 * math.isqrt(n - 1) + 2
        iters_r = math.ceil(math.log2(n)) + 2
        full = sum(HuangSolver(p).work_per_iteration().values()) * iters_h
        band = sum(BandedSolver(p).work_per_iteration().values()) * iters_h
        ryt = sum(RytterSolver(p, max_n=n).work_per_iteration().values()) * iters_r
        assert seq_work < band < full < ryt


class TestE2WorstCase:
    def test_lemma_bound_on_vines(self):
        for pt in worst_case_series([16, 64, 256, 1024]):
            assert pt.moves <= pt.bound

    def test_vine_is_sqrt_shaped(self):
        pts = worst_case_series([256, 4096])
        # sqrt shape: 16x n -> 4x moves (within slack).
        assert pts[1].moves / pts[0].moves == pytest.approx(4.0, rel=0.25)


class TestE3EasyTrees:
    def test_complete_tree_logarithmic(self):
        for n in [64, 1024]:
            moves = PebbleGame(GameTree.complete(n)).run().moves
            assert moves <= math.ceil(math.log2(n)) + 2

    def test_algorithm_skewed_vs_zigzag(self):
        """Section 6: skewed/complete optimal trees are solved in
        O(log n) iterations; the zigzag needs Θ(sqrt n)."""
        n = 49
        iters = {}
        for name, shape in [
            ("zigzag", zigzag_tree),
            ("skewed", skewed_tree),
            ("complete", complete_tree),
        ]:
            prob = synthesize_instance(shape(n), style="uniform_plus")
            ref = solve_sequential(prob)
            out = BandedSolver(prob).run(UntilValue(ref.value), max_iterations=60)
            iters[name] = out.iterations
        assert iters["skewed"] <= math.ceil(math.log2(n)) + 2
        assert iters["complete"] <= math.ceil(math.log2(n)) + 2
        assert iters["zigzag"] > iters["skewed"]
        assert iters["zigzag"] <= moves_upper_bound(n)


class TestE4AverageCase:
    def test_paper_recurrence_is_logarithmic(self):
        ns = np.arange(32, 1024, 61)
        T = paper_T(1024)
        _, rmse_log = fit_log(ns, T[ns])
        _, rmse_sqrt = fit_sqrt(ns, T[ns])
        assert rmse_log < rmse_sqrt

    def test_random_tree_moves_track_log(self):
        """Monte-Carlo game moves on random trees grow ~log n."""
        means = {
            n: game_move_statistics(n, samples=12, seed=0).mean
            for n in (64, 256, 1024)
        }
        # Log shape: equal increments per 4x (within noise), far below
        # the sqrt-shaped doubling.
        inc1 = means[256] - means[64]
        inc2 = means[1024] - means[256]
        assert abs(inc2 - inc1) < 2.0
        assert means[1024] < 0.5 * math.sqrt(1024)


class TestE5Termination:
    def test_w_stable_correct_on_sample(self):
        """The paper's suggested rule never stopped wrong in our runs."""
        for seed in range(4):
            p = random_matrix_chain(12, seed=seed)
            ref = solve_sequential(p).value
            out = BandedSolver(p).run(WStable(), max_iterations=60)
            assert out.value == pytest.approx(ref)

    def test_early_stopping_beats_schedule_on_random(self):
        p = random_matrix_chain(20, seed=3)
        out = BandedSolver(p).run(WStable(), max_iterations=60)
        assert out.iterations < 2 * math.isqrt(19) + 2 + 3  # well below cap


class TestE6ProcessorReduction:
    def test_square_work_ratio(self):
        """Banded square work is Θ(n^3.5) vs full Θ(n⁵): the ratio grows
        like n^1.5 (≈ 5.3x at n=48, and strictly growing)."""
        ratios = {}
        for n in (16, 48):
            p = random_matrix_chain(n, seed=0)
            full = HuangSolver(p).work_per_iteration()["square"]
            band = BandedSolver(p).work_per_iteration()["square"]
            ratios[n] = full / band
        assert ratios[48] > 4.0
        assert ratios[48] > 2.5 * ratios[16]

    def test_pebble_window_n15(self):
        """The size-band pebble window is O(n^1.5) cells."""
        n = 36
        p = random_matrix_chain(n, seed=0)
        s = BandedSolver(p)
        worst = max(
            s.pebble_window_cells(t) for t in range(1, 2 * math.isqrt(n) + 3)
        )
        assert worst <= 2.5 * n**1.5


class TestE7OpCosts:
    def test_pram_costs_match_formulas(self):
        from repro.core.pram_ops import PRAMHuang

        p = random_matrix_chain(6, seed=1)
        h = PRAMHuang(p)
        h.run()
        counts = HuangSolver(p).work_per_iteration()
        assert h.op_costs["activate"].peak_processors == counts["activate"]
        assert h.op_costs["square"].peak_processors == counts["square"]
        assert h.op_costs["pebble"].peak_processors == counts["pebble"]
        # activate is O(1) time per iteration; square/pebble O(log n).
        iters = h.op_costs["activate"].time
        assert h.op_costs["square"].time <= iters * (math.ceil(math.log2(7)) + 2)


class TestE8Correctness:
    def test_three_applications(self, clrs_chain, clrs_bst, square_polygon):
        for prob, expected in [
            (clrs_chain, 15125.0),
            (clrs_bst, 2.75),
            (square_polygon, None),
        ]:
            ref = solve_sequential(prob).value
            if expected is not None:
                assert ref == pytest.approx(expected)
            for cls in (HuangSolver, BandedSolver, RytterSolver):
                assert cls(prob).run().value == pytest.approx(ref)
