"""The Section 4 lockstep correctness argument, executed.

The paper proves correctness by running the pebbling game on an optimal
tree *in lockstep* with the algorithm and maintaining:

(a) if node (i, j) is pebbled after the k-th pebble, then after the
    k-th a-pebble, w'(i, j) = w(i, j);
(b) if cond((i, j)) = (p, q) after the k-th square/activate, then after
    the k-th a-square/a-activate, pw'(i, j, p, q) = pw(i, j, p, q).

This test executes that argument literally: a game on the optimal tree
and a HuangSolver advance together, and both invariants are checked
after every move against sequential ground truth (w from the O(n³) DP,
pw from the exact oracle).
"""

import numpy as np
import pytest

from repro.core.exact_pw import exact_pw_table
from repro.core.huang import HuangSolver
from repro.core.reconstruct import reconstruct_tree
from repro.core.sequential import solve_sequential
from repro.pebbling import GameTree, PebbleGame
from repro.problems.generators import random_generic, random_matrix_chain
from repro.trees import synthesize_instance, zigzag_tree


def run_lockstep(problem, max_moves=60):
    ref = solve_sequential(problem)
    true_pw = exact_pw_table(problem)
    tree = reconstruct_tree(problem, ref.w)
    game = PebbleGame(GameTree.from_parse_tree(tree))
    solver = HuangSolver(problem)
    t = game.tree

    moves = 0
    while not game.root_pebbled:
        game.activate()
        solver.a_activate()
        game.square()
        solver.a_square()

        # Invariant (b): cond pointers certify pw' values.
        for x in range(t.num_nodes):
            i, j = t.intervals[x]
            p, q = t.intervals[game.cond[x]]
            assert solver.pw[i, j, p, q] == pytest.approx(
                true_pw[i, j, p, q]
            ), f"pw'({i},{j},{p},{q}) not yet exact at move {moves + 1}"

        game.pebble()
        solver.a_pebble()

        # Invariant (a): pebbles certify w' values.
        for x in np.flatnonzero(game.pebbled):
            i, j = t.intervals[x]
            assert solver.w[i, j] == pytest.approx(
                ref.w[i, j]
            ), f"w'({i},{j}) not yet exact at move {moves + 1}"

        moves += 1
        assert moves <= max_moves

    # Root pebbled => algorithm value is final.
    assert solver.w[0, problem.n] == pytest.approx(ref.value)
    return moves


class TestLockstep:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_generic(self, seed):
        run_lockstep(random_generic(9, seed=seed))

    def test_matrix_chain(self):
        run_lockstep(random_matrix_chain(10, seed=5))

    def test_zigzag_forced(self):
        """The worst-case shape: the game takes Θ(sqrt n) moves and the
        algorithm tracks it all the way."""
        p = synthesize_instance(zigzag_tree(12), style="uniform_plus")
        moves = run_lockstep(p)
        assert moves >= 4  # genuinely multi-move on the zigzag

    def test_game_bounds_algorithm_iterations(self):
        """Iterations until the algorithm's root value is correct never
        exceed the game's move count on the optimal tree."""
        for seed in range(4):
            p = random_generic(10, seed=100 + seed)
            ref = solve_sequential(p)
            tree = reconstruct_tree(p, ref.w)
            game_moves = PebbleGame(GameTree.from_parse_tree(tree)).run().moves
            solver = HuangSolver(p)
            from repro.core.termination import UntilValue

            out = solver.run(UntilValue(ref.value), max_iterations=80)
            assert out.iterations <= game_moves
