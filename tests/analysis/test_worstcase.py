"""Unit tests for the worst-case series."""


from repro.analysis.worstcase import (
    algorithm_zigzag_series,
    worst_case_series,
)


class TestGameSeries:
    def test_bound_never_violated(self):
        pts = worst_case_series([4, 16, 64, 256, 1024])
        for p in pts:
            assert p.moves <= p.bound

    def test_sqrt_ratio_stabilises(self):
        pts = worst_case_series([256, 1024, 4096])
        ratios = [p.ratio for p in pts]
        # Θ(sqrt n): ratio bounded between 1 and 2 and nearly constant.
        assert all(1.0 <= r <= 2.0 for r in ratios)
        assert max(ratios) - min(ratios) < 0.3

    def test_rytter_rule_much_faster(self):
        slow = worst_case_series([1024])[0].moves
        fast = worst_case_series([1024], square_rule="rytter")[0].moves
        assert fast < slow / 3


class TestAlgorithmSeries:
    def test_iterations_within_schedule(self):
        pts = algorithm_zigzag_series([16, 25, 36])
        for p in pts:
            assert p.moves <= p.bound

    def test_grows_with_n(self):
        pts = algorithm_zigzag_series([16, 49])
        assert pts[1].moves > pts[0].moves
