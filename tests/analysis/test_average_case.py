"""Unit tests for the Section 6 recurrence and the fits."""

import numpy as np
import pytest

from repro.analysis.average_case import fit_log, fit_sqrt, paper_T, paper_T_upper


class TestPaperT:
    def test_base_cases(self):
        T = paper_T(4)
        assert T[1] == 0.0
        assert T[2] == 1.0  # single split, max(T1,T1)+1
        assert T[3] == 2.0  # splits (1,2) or (2,1): max(0,1)+1 = 2

    def test_monotone(self):
        T = paper_T(200)
        assert (np.diff(T[1:]) >= -1e-12).all()

    def test_logarithmic_growth(self):
        """T(4n) - T(n) is a constant (log growth): quadrupling n adds
        ~4.5 moves regardless of n. Sqrt growth would double the value."""
        T = paper_T(4096)
        diffs = [T[4 * n] - T[n] for n in (64, 256, 1024)]
        assert max(diffs) < 5.0
        assert max(diffs) - min(diffs) < 0.1

    def test_upper_bound_dominates(self):
        T = paper_T(300)
        U = paper_T_upper(300)
        assert (U[2:] + 1e-9 >= T[2:]).all()

    def test_fits_log_better_than_sqrt(self):
        ns = np.arange(16, 2048, 37)
        T = paper_T(2048)
        vals = T[ns]
        _, rmse_log = fit_log(ns, vals)
        _, rmse_sqrt = fit_sqrt(ns, vals)
        assert rmse_log < rmse_sqrt

    def test_invalid(self):
        with pytest.raises(ValueError):
            paper_T(0)
        with pytest.raises(ValueError):
            paper_T_upper(0)


class TestFits:
    def test_exact_log_recovery(self):
        ns = np.array([4, 16, 64, 256])
        vals = 3.0 * np.log2(ns)
        c, rmse = fit_log(ns, vals)
        assert c == pytest.approx(3.0)
        assert rmse == pytest.approx(0.0, abs=1e-9)

    def test_exact_sqrt_recovery(self):
        ns = np.array([4, 16, 64, 256])
        vals = 1.5 * np.sqrt(ns)
        c, rmse = fit_sqrt(ns, vals)
        assert c == pytest.approx(1.5)
        assert rmse == pytest.approx(0.0, abs=1e-9)

    def test_degenerate(self):
        with pytest.raises(ValueError):
            fit_log([1], [0.0])  # log2(1) = 0 basis


class TestFoldedIdentity:
    def test_paper_fold_is_an_identity(self):
        """The paper's max -> larger-argument step is exact for the
        monotone T, so the 'upper bound' coincides with T pointwise —
        the derivation step, machine-checked."""
        T = paper_T(400)
        U = paper_T_upper(400)
        assert np.allclose(T[2:], U[2:])
