"""Unit tests for move-count distributions."""

import numpy as np
import pytest

from repro.analysis.distribution import move_distribution
from repro.pebbling import moves_upper_bound


class TestMoveDistribution:
    @pytest.fixture(scope="class")
    def dist(self):
        return move_distribution(128, samples=50, seed=4)

    def test_deterministic(self, dist):
        again = move_distribution(128, samples=50, seed=4)
        assert np.array_equal(dist.counts, again.counts)

    def test_sorted_sample(self, dist):
        assert np.array_equal(dist.counts, np.sort(dist.counts))

    def test_within_bound(self, dist):
        assert dist.counts.max() <= dist.bound == moves_upper_bound(128)

    def test_quantiles_ordered(self, dist):
        assert dist.quantile(0.5) <= dist.quantile(0.9) <= dist.quantile(0.99)

    def test_concentration(self, dist):
        """Section 6's 'in most cases': p99 within a couple of moves of
        the mean, and huge headroom to the worst-case bound."""
        assert dist.quantile(0.99) - dist.mean <= 3.0
        assert dist.tail_headroom > 0.5

    def test_histogram_sums(self, dist):
        assert sum(dist.histogram().values()) == dist.samples

    def test_summary_row_shape(self, dist):
        row = dist.summary_row()
        assert len(row) == 8 and row[0] == 128

    def test_rytter_rule_shifts_left(self):
        slow = move_distribution(128, samples=30, seed=1)
        fast = move_distribution(128, samples=30, seed=1, square_rule="rytter")
        assert fast.mean < slow.mean


class TestSparklineViz:
    def test_sparkline_basic(self):
        from repro.viz import sparkline

        s = sparkline([1, 2, 3, 4])
        assert len(s) == 4
        assert s[0] == "▁" and s[-1] == "█"

    def test_sparkline_constant_and_empty(self):
        from repro.viz import sparkline

        assert sparkline([]) == ""
        assert len(set(sparkline([5, 5, 5]))) == 1

    def test_histogram_lines(self):
        from repro.viz import histogram_lines

        out = histogram_lines({3: 10, 4: 20, 5: 5})
        assert "3" in out and "#" in out
        assert out.splitlines()[0].strip().startswith("moves")

    def test_histogram_empty(self):
        from repro.viz import histogram_lines

        assert histogram_lines({}) == "(empty)"
