"""Unit tests for the Monte-Carlo harnesses."""

import numpy as np

from repro.analysis.montecarlo import (
    MoveStatistics,
    algorithm_iteration_statistics,
    game_move_statistics,
)
from repro.pebbling import moves_upper_bound
from repro.problems.generators import random_matrix_chain


class TestMoveStatistics:
    def test_from_sample(self):
        s = MoveStatistics.from_sample(10, np.array([2, 4, 6]))
        assert s.mean == 4.0 and s.minimum == 2 and s.maximum == 6
        assert s.samples == 3 and s.n == 10
        assert len(s.row()) == 7


class TestGameStats:
    def test_deterministic(self):
        a = game_move_statistics(64, samples=8, seed=5)
        b = game_move_statistics(64, samples=8, seed=5)
        assert a == b

    def test_within_lemma_bound(self):
        s = game_move_statistics(100, samples=12, seed=0)
        assert s.maximum <= moves_upper_bound(100)

    def test_average_below_worst_case(self):
        """Random trees pebble much faster than the vine (Section 6)."""
        from repro.pebbling import GameTree, PebbleGame

        s = game_move_statistics(400, samples=10, seed=1)
        vine = PebbleGame(GameTree.vine(400)).run().moves
        assert s.mean < vine

    def test_rytter_rule_supported(self):
        s = game_move_statistics(64, samples=5, seed=2, square_rule="rytter")
        assert s.maximum <= 10


class TestAlgorithmStats:
    def test_policy_correctness_asserted(self):
        stopped, correct = algorithm_iteration_statistics(
            10,
            lambda n, rng: random_matrix_chain(n, seed=rng),
            samples=4,
            seed=3,
        )
        assert stopped.samples == 4
        # Detection lag: the stopping rule can only fire after the value
        # stops changing, so stopped >= correct.
        assert stopped.mean >= correct.mean

    def test_full_solver_option(self):
        stopped, _ = algorithm_iteration_statistics(
            8,
            lambda n, rng: random_matrix_chain(n, seed=rng),
            samples=2,
            seed=0,
            solver="full",
        )
        assert stopped.samples == 2
