"""Unit tests for convergence profiling."""

import pytest

from repro.analysis.convergence import convergence_profile
from repro.core.huang import HuangSolver
from repro.errors import ConvergenceError
from repro.problems.generators import random_generic
from repro.trees import complete_tree, synthesize_instance, zigzag_tree


class TestProfile:
    def test_leaves_are_iteration_zero(self):
        p = random_generic(8, seed=0)
        prof = convergence_profile(p)
        for i in range(8):
            assert prof.first_exact[i, i + 1] == 0

    def test_all_valid_cells_converge(self):
        p = random_generic(10, seed=1)
        prof = convergence_profile(p)
        n = 10
        for i in range(n):
            for j in range(i + 1, n + 1):
                assert prof.first_exact[i, j] >= 0
        assert prof.first_exact[0, 0] == -1  # invalid cell

    def test_by_length_monotone_max(self):
        """Longer intervals cannot be exact before their sub-intervals
        at every position... but the *max* per length is nondecreasing
        in practice for forced instances; assert nondecreasing for the
        zigzag (the staircase)."""
        p = synthesize_instance(zigzag_tree(18), style="uniform_plus")
        prof = convergence_profile(p)
        maxes = [mx for (_l, _m, mx) in prof.by_length()]
        assert maxes == sorted(maxes)

    def test_zigzag_slower_than_complete(self):
        n = 25
        zig = convergence_profile(
            synthesize_instance(zigzag_tree(n), style="uniform_plus")
        )
        comp = convergence_profile(
            synthesize_instance(complete_tree(n), style="uniform_plus")
        )
        assert zig.iterations > comp.iterations

    def test_frontier_widths_sum_to_cells(self):
        p = random_generic(9, seed=2)
        prof = convergence_profile(p)
        # Cells of length >= 2: total intervals - leaves.
        expected = 9 * 10 // 2 - 9
        assert sum(prof.frontier_width()) == expected

    def test_custom_solver(self):
        p = random_generic(8, seed=3)
        prof = convergence_profile(p, solver=HuangSolver(p))
        assert prof.iterations >= 1

    def test_cap(self):
        p = random_generic(8, seed=0)
        with pytest.raises(ConvergenceError):
            convergence_profile(p, max_iterations=1)
