"""The analyzer: ok/failed/dropped accounting, per-source and per-shard
breakdowns, SLO goodput and the shard-imbalance coefficient."""

import pytest

from repro.loadgen import analyze, latency_summary
from repro.loadgen.analyze import imbalance


def rec(i, latency_ms, *, ok=True, source="batch", shard=None, route=None, recv=1.0):
    return {
        "i": i,
        "ok": ok,
        "source": source,
        "shard": shard,
        "route": route,
        "recv_s": recv,
        "latency_ms": latency_ms,
    }


class TestAccounting:
    def test_ok_failed_dropped_partition(self):
        records = [
            rec(0, 5.0),
            rec(1, 9.0, ok=False),  # responded, ok: false
            {"i": 2, "ok": False, "recv_s": None, "latency_ms": None},  # dropped
        ]
        out = analyze(records)
        assert (out["requests"], out["ok"], out["failed"], out["dropped"]) == (
            3, 1, 1, 1,
        )

    def test_empty_input(self):
        out = analyze([])
        assert out["requests"] == 0 and out["latency_ms"] is None
        assert out["by_source"] == {} and out["imbalance"] is None
        assert out["by_route"] == {}

    def test_throughput_over_horizon(self):
        records = [rec(i, 1.0, recv=2.0) for i in range(10)]
        out = analyze(records)
        assert out["duration_s"] == 2.0 and out["throughput_rps"] == 5.0


class TestBreakdowns:
    def test_by_source_partitions_ok_requests(self):
        records = [
            rec(0, 10.0, source="batch"),
            rec(1, 1.0, source="cache"),
            rec(2, 1.5, source="cache"),
            rec(3, 2.0, source="delta"),
        ]
        out = analyze(records)
        assert set(out["by_source"]) == {"batch", "cache", "delta"}
        assert out["by_source"]["cache"]["count"] == 2
        assert out["by_source"]["batch"]["max_ms"] == 10.0

    def test_by_shard_and_imbalance(self):
        records = [rec(i, 1.0, shard=i % 2) for i in range(8)]
        out = analyze(records)
        assert out["by_shard"]["0"]["count"] == 4
        assert out["imbalance"]["counts"] == [4, 4]
        assert out["imbalance"]["cv"] == 0.0
        assert out["imbalance"]["peak_to_mean"] == 1.0

    def test_by_route_partitions_ok_requests(self):
        records = [
            rec(0, 1.0, route="ring"),
            rec(1, 2.0, route="ring"),
            rec(2, 8.0, route="spill"),
            rec(3, 3.0, route="affinity"),
            rec(4, 9.0, route="spill", ok=False),  # failed: not counted
        ]
        out = analyze(records)
        assert set(out["by_route"]) == {"ring", "spill", "affinity"}
        assert out["by_route"]["ring"]["count"] == 2
        assert out["by_route"]["spill"]["max_ms"] == 8.0

    def test_non_fleet_records_have_no_route_breakdown(self):
        records = [rec(i, 1.0) for i in range(4)]  # route is None
        assert analyze(records)["by_route"] == {}

    def test_starved_shard_zero_filled(self):
        """A shard that absorbed nothing still shows up in the
        imbalance coefficient when the fleet width is known — the E12
        [72, 72, 0, 48] shape must not flatter itself."""
        records = [rec(i, 1.0, shard=0) for i in range(6)]
        out = analyze(records, shards=3)
        assert out["imbalance"]["counts"] == [6, 0, 0]
        assert out["imbalance"]["peak_to_mean"] == 3.0


class TestSlo:
    def test_goodput_counts_ok_and_fast(self):
        records = [
            rec(0, 5.0),
            rec(1, 50.0),
            rec(2, 500.0),  # too slow
            rec(3, 5.0, ok=False),  # failed: never goodput
        ]
        out = analyze(records, slo_ms=100.0)
        assert out["slo"]["threshold_ms"] == 100.0
        assert out["slo"]["attained"] == 2
        assert out["slo"]["goodput_fraction"] == 0.5

    def test_no_slo_requested(self):
        assert analyze([rec(0, 1.0)])["slo"] is None


class TestHelpers:
    def test_latency_summary_empty_is_none(self):
        assert latency_summary([]) is None

    def test_latency_summary_fields(self):
        out = latency_summary([2.0, 4.0, 6.0, 8.0])
        assert out["count"] == 4 and out["mean_ms"] == 5.0
        assert out["p50_ms"] == 5.0 and out["max_ms"] == 8.0

    def test_imbalance_total_hotspot(self):
        out = imbalance([12, 0, 0, 0])
        assert out["peak_to_mean"] == 4.0
        assert out["cv"] == pytest.approx(1.7321, abs=1e-4)

    def test_imbalance_empty_counts(self):
        assert imbalance([])["cv"] == 0.0
        assert imbalance([0, 0])["peak_to_mean"] == 0.0
