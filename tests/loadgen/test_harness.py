"""The load harness: closed/open replay, record shape, determinism of
closed replays, and the ephemeral targets' lifecycle hygiene.

Targets stay cheap (serial backend, sequential method, tiny instances):
what is under test is the replayer, not the solvers.
"""

import pytest

from repro.errors import ReproError
from repro.loadgen import TraceConfig, generate_trace, run_loadtest

SERVICE_KWARGS = dict(backend="serial", method="sequential", batch_window=0.001)

CLOSED = TraceConfig(
    arrival="closed", count=16, pool=4, popularity="zipf",
    family="chain", n=10, seed=3,
)


class TestClosedReplay:
    def test_all_answered_with_full_records(self):
        result = run_loadtest(CLOSED, target="local", target_kwargs=SERVICE_KWARGS)
        assert result.mode == "closed" and result.target == "local"
        assert len(result.records) == CLOSED.count
        for record in result.records:
            assert record["ok"] is True
            assert record["recv_s"] >= record["sent_s"] >= 0.0
            assert record["latency_ms"] >= 0.0
            assert record["source"] in ("batch", "cache", "coalesced", "delta")
            assert record["value"] is not None

    def test_closed_replay_is_deterministic(self):
        """The E13 determinism gate in miniature: the same closed trace
        against two fresh targets yields identical per-request source
        attributions and values — no wall-clock race can change which
        request finds which cache state."""
        a = run_loadtest(CLOSED, target="local", target_kwargs=SERVICE_KWARGS)
        b = run_loadtest(CLOSED, target="local", target_kwargs=SERVICE_KWARGS)
        assert a.sources() == b.sources()
        assert [r["value"] for r in a.records] == [r["value"] for r in b.records]

    def test_duplicates_hit_the_cache(self):
        result = run_loadtest(CLOSED, target="local", target_kwargs=SERVICE_KWARGS)
        sources = result.sources()
        # 16 zipf draws over a 4-pool: the head instance repeats, and
        # every repeat of an already-solved instance is a cache hit.
        assert sources.count("cache") >= 4
        summary = result.summary()
        assert summary["by_source"]["cache"]["count"] == sources.count("cache")


class TestOpenReplay:
    def test_zero_dropped_at_modest_rate(self):
        config = TraceConfig(
            arrival="uniform", rate=200.0, count=30, pool=5,
            family="chain", n=10, seed=1,
        )
        result = run_loadtest(config, target="local", target_kwargs=SERVICE_KWARGS)
        summary = result.summary(slo_ms=250.0)
        assert result.mode == "open"
        assert summary["dropped"] == 0 and summary["failed"] == 0
        assert summary["slo"]["attained"] == 30

    def test_latency_measured_from_scheduled_arrival(self):
        """Coordinated-omission correction: open-mode latency spans
        scheduled-arrival -> receive, so it can never be smaller than
        the send -> receive service time."""
        config = TraceConfig(arrival="uniform", rate=500.0, count=20, pool=3, n=8)
        result = run_loadtest(config, target="local", target_kwargs=SERVICE_KWARGS)
        for record in result.records:
            assert record["sent_s"] >= record["at_s"] - 1e-6
            service_ms = (record["recv_s"] - record["sent_s"]) * 1e3
            assert record["latency_ms"] >= service_ms - 1e-3

    def test_speed_rescales_the_schedule(self):
        config = TraceConfig(arrival="uniform", rate=10.0, count=4, pool=2, n=8)
        result = run_loadtest(
            config, target="local", target_kwargs=SERVICE_KWARGS, speed=100.0
        )
        # 4 events at 10 rps would take 0.4s; at 100x they fit in ~4ms.
        assert result.records[-1]["at_s"] == pytest.approx(0.004)
        assert result.summary()["dropped"] == 0

    def test_timeout_converts_to_dropped(self):
        config = TraceConfig(arrival="uniform", rate=1000.0, count=3, pool=3, n=12)
        result = run_loadtest(
            config, target="local", target_kwargs=SERVICE_KWARGS, timeout=1e-6
        )
        summary = result.summary()
        assert summary["dropped"] == 3
        assert all("timed out" in r["error"] for r in result.records)


class TestFleetTarget:
    def test_open_replay_against_live_fleet(self):
        """End to end over real shard processes: every request
        answered, every record stamped with the answering shard, and
        the imbalance coefficient computed over the true fleet width."""
        config = TraceConfig(
            arrival="poisson", rate=150.0, count=24, pool=6,
            popularity="zipf", family="chain", n=10, seed=5,
        )
        result = run_loadtest(
            config, target="fleet", shards=2,
            target_kwargs=SERVICE_KWARGS, with_status=True,
        )
        summary = result.summary(slo_ms=500.0)
        assert summary["dropped"] == 0 and summary["failed"] == 0
        assert result.shards == 2 and result.target == "fleet:2"
        assert all(r["shard"] in (0, 1) for r in result.records)
        assert len(summary["imbalance"]["counts"]) == 2
        assert sum(summary["imbalance"]["counts"]) == 24
        # the post-replay status snapshot came from the router
        assert result.status["shards"] == 2
        assert result.status["totals"]["queue_depth"] == 0


class TestValidation:
    def test_needs_config_or_events(self):
        with pytest.raises(ReproError, match="TraceConfig or explicit events"):
            run_loadtest()

    def test_empty_events_rejected(self):
        with pytest.raises(ReproError, match="empty trace"):
            run_loadtest(CLOSED, events=[])

    def test_bad_mode_rejected(self):
        with pytest.raises(ReproError, match="mode"):
            run_loadtest(CLOSED, mode="sideways")

    def test_bad_speed_rejected(self):
        with pytest.raises(ReproError, match="speed"):
            run_loadtest(CLOSED, speed=0.0)

    def test_target_kwargs_refused_for_address_targets(self):
        with pytest.raises(ReproError, match="target_kwargs"):
            run_loadtest(
                CLOSED, target="/tmp/nonexistent.sock",
                target_kwargs={"backend": "serial"},
            )

    def test_explicit_events_replayed_verbatim(self):
        events = generate_trace(CLOSED)[:5]
        result = run_loadtest(
            CLOSED, events=events, target="local", target_kwargs=SERVICE_KWARGS
        )
        assert len(result.records) == 5
        assert [r["i"] for r in result.records] == [0, 1, 2, 3, 4]
