"""Regression baseline: consistent-hash load imbalance under Zipf.

The fleet's :class:`~repro.service.fleet.HashRing` places *keys*
evenly-ish, but a Zipf-popular workload concentrates *requests*: the
hot head of the popularity law all hashes to whichever shards happen to
own those few keys. This file pins the measured imbalance of the
canonical E13 Zipf trace (400 requests, 16-instance pool, s = 1.1,
seed 7) over a 4-shard ring:

    per-shard request counts  [8, 199, 97, 96]
    coefficient of variation  0.6762
    peak-to-mean              1.99

— i.e. the busiest shard absorbs ~2x its fair share while another
nearly starves. **This is the baseline ROADMAP item 4 (bounded-load /
load-aware routing) must beat**: whatever replaces plain consistent
hashing should cut the CV well below this pinned value on exactly this
trace. Everything here is seeded and deterministic, so the numbers are
exact equalities, not bands — including the bounded-load router's
placement over the very same trace, pinned below the baseline (the
offline twin of the ``bench_e14_routing.py --smoke`` CI gate).
"""

from collections import Counter

from repro.loadgen import TraceConfig, generate_trace
from repro.loadgen.analyze import imbalance
from repro.problems.specs import route_key_from_spec
from repro.service.fleet import HashRing
from repro.service.routing import simulate_routing

BASELINE_TRACE = TraceConfig(
    count=400, pool=16, popularity="zipf", zipf_s=1.1,
    family="chain", n=24, seed=7,
)
SHARDS = 4


def shard_counts(config: TraceConfig, shards: int) -> list[int]:
    ring = HashRing(range(shards))
    owners = Counter(
        ring.route(route_key_from_spec(ev.spec)) for ev in generate_trace(config)
    )
    return [owners.get(s, 0) for s in range(shards)]


class TestZipfImbalanceBaseline:
    def test_measured_baseline_is_pinned(self):
        counts = shard_counts(BASELINE_TRACE, SHARDS)
        assert counts == [8, 199, 97, 96]
        measured = imbalance(counts)
        assert measured["cv"] == 0.6762
        assert measured["peak_to_mean"] == 1.99

    def test_skew_is_a_popularity_effect_not_a_ring_defect(self):
        """The same pool routed uniformly is markedly more even — the
        ring itself is fine; it is the Zipf head that concentrates.
        (Still not perfectly even: 16 keys over 4 shards is a small
        sample, which is exactly why bounded-load routing is on the
        roadmap rather than more vnodes.)"""
        uniform = TraceConfig(**{**BASELINE_TRACE.to_dict(), "popularity": "uniform"})
        cv_zipf = imbalance(shard_counts(BASELINE_TRACE, SHARDS))["cv"]
        cv_uniform = imbalance(shard_counts(uniform, SHARDS))["cv"]
        assert cv_uniform < cv_zipf

    def test_every_request_routes_inside_the_fleet(self):
        counts = shard_counts(BASELINE_TRACE, SHARDS)
        assert sum(counts) == BASELINE_TRACE.count


class TestBoundedLoadBeatsTheBaseline:
    """ROADMAP item 4, landed: the bounded-load router over exactly the
    baseline trace. Deterministic (offline placement simulation), so
    the improvement is pinned as exact numbers the same way the
    baseline is."""

    def trace_keys(self):
        return [route_key_from_spec(ev.spec) for ev in generate_trace(BASELINE_TRACE)]

    def test_bounded_router_beats_the_pinned_baseline(self):
        sim = simulate_routing(
            self.trace_keys(), range(SHARDS), policy="bounded", load_factor=1.25
        )
        measured = imbalance(sim["counts"])
        # the pinned ring numbers above are 0.6762 / 1.99; the margin
        # here is deliberately generous so reasonable routing-policy
        # tuning doesn't churn this regression test
        assert measured["cv"] < 0.3
        assert measured["peak_to_mean"] < 1.5
        assert sum(sim["counts"]) == BASELINE_TRACE.count

    def test_p2c_also_beats_the_baseline(self):
        sim = simulate_routing(self.trace_keys(), range(SHARDS), policy="p2c")
        measured = imbalance(sim["counts"])
        assert measured["cv"] < 0.6762
        assert measured["peak_to_mean"] < 1.99

    def test_hot_head_spills_but_cold_tail_keeps_affinity(self):
        """Zipf concentrates a few hot keys; bounding moves some of
        their repeats (spill/affinity tags) while the cold tail still
        routes to its ring owner — locality is preserved where load
        allows."""
        sim = simulate_routing(
            self.trace_keys(), range(SHARDS), policy="bounded", load_factor=1.25
        )
        assert sim["tags"]["spill"] > 0
        assert sim["tags"]["affinity"] > 0
        assert sim["tags"]["ring"] > 0
