"""Trace generation and schema: the byte-determinism property suite.

The contract under test is the one the whole E13 instrument rests on:
**same seed + same config => byte-identical trace file**, different
seeds => different arrival sequences, and a reader that refuses
truncated or incompatible files instead of replaying a silently
different workload.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.loadgen import (
    TraceConfig,
    generate_trace,
    read_trace,
    trace_lines,
    write_trace,
)
from repro.loadgen.arrivals import ARRIVALS
from repro.loadgen.popularity import POPULARITIES

configs = st.builds(
    TraceConfig,
    arrival=st.sampled_from(ARRIVALS),
    rate=st.sampled_from([5.0, 50.0, 400.0]),
    count=st.integers(1, 40),
    popularity=st.sampled_from(POPULARITIES),
    pool=st.integers(1, 12),
    zipf_s=st.sampled_from([0.8, 1.1, 2.0]),
    family=st.sampled_from(["chain", "bst", "bottleneck", "generic"]),
    n=st.integers(4, 24),
    seed=st.integers(0, 2**31 - 1),
)


class TestByteDeterminism:
    @given(config=configs)
    @settings(max_examples=40, deadline=None)
    def test_same_seed_same_bytes(self, config):
        """The headline property: serialising the same config twice —
        through two independent generate passes — yields identical
        lines, hence an identical file byte-for-byte."""
        assert trace_lines(config) == trace_lines(config)

    @given(
        config=configs.filter(lambda c: c.arrival in ("poisson", "bursty")),
        other_seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_different_seeds_differ(self, config, other_seed):
        """Distinct seeds give distinct arrival sequences for the
        stochastic processes (exponential gaps collide with probability
        zero). Deterministic corners — uniform spacing, closed traces —
        are exempt by construction."""
        if other_seed == config.seed:
            other_seed = config.seed + 1
        a = [ev.at_s for ev in generate_trace(config)]
        b = [
            ev.at_s
            for ev in generate_trace(TraceConfig(**{
                **config.to_dict(), "seed": other_seed
            }))
        ]
        assert a != b

    def test_round_trip_through_file(self, tmp_path):
        config = TraceConfig(count=25, pool=5, seed=11)
        path = write_trace(tmp_path / "t.jsonl", config)
        config2, events = read_trace(path)
        assert config2 == config
        assert [ev.to_dict() for ev in events] == [
            ev.to_dict() for ev in generate_trace(config)
        ]
        # and a rewrite of what was read reproduces the bytes exactly
        assert trace_lines(config2, events) == trace_lines(config)


class TestTraceShape:
    def test_offsets_non_decreasing_and_specs_from_pool(self):
        config = TraceConfig(count=50, pool=4, seed=3)
        events = generate_trace(config)
        offsets = [ev.at_s for ev in events]
        assert offsets == sorted(offsets)
        assert len({json.dumps(ev.spec, sort_keys=True) for ev in events}) <= 4

    def test_closed_trace_is_all_zero_offsets(self):
        events = generate_trace(TraceConfig(arrival="closed", count=9))
        assert all(ev.at_s == 0.0 for ev in events)

    def test_adversarial_pool_is_explicit_data(self):
        """Adversarial chain traces carry explicit worst-case dims, and
        all popularity mass lands on pool entry 0."""
        config = TraceConfig(
            popularity="adversarial", family="chain", n=8, count=12, pool=3
        )
        events = generate_trace(config)
        specs = {json.dumps(ev.spec, sort_keys=True) for ev in events}
        assert len(specs) == 1  # pure hotspot
        assert "dims" in events[0].spec

    def test_method_stamped_on_every_spec(self):
        config = TraceConfig(count=6, method="huang-banded")
        events = generate_trace(config)
        assert all(ev.spec["method"] == "huang-banded" for ev in events)


class TestValidation:
    @pytest.mark.parametrize(
        "bad",
        [
            dict(arrival="martian"),
            dict(popularity="martian"),
            dict(family="martian"),
            dict(count=0),
            dict(pool=0),
            dict(rate=0.0),
        ],
    )
    def test_bad_config_rejected(self, bad):
        with pytest.raises(ReproError):
            TraceConfig(**bad).validate()

    def test_unknown_config_key_rejected(self):
        with pytest.raises(ReproError, match="unknown trace-config"):
            TraceConfig.from_dict({"count": 3, "frobnicate": 1})

    def test_truncated_file_rejected(self, tmp_path):
        path = write_trace(tmp_path / "t.jsonl", TraceConfig(count=10))
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-2]) + "\n")
        with pytest.raises(ReproError, match="truncated"):
            read_trace(path)

    def test_newer_version_refused(self, tmp_path):
        path = write_trace(tmp_path / "t.jsonl", TraceConfig(count=2))
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        header["version"] = 99
        path.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
        with pytest.raises(ReproError, match="version"):
            read_trace(path)

    def test_non_trace_file_refused(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"family": "chain", "n": 8}\n')
        with pytest.raises(ReproError, match="repro-trace"):
            read_trace(path)

    def test_out_of_order_offsets_refused(self, tmp_path):
        path = write_trace(tmp_path / "t.jsonl", TraceConfig(count=3))
        lines = path.read_text().splitlines()
        ev = json.loads(lines[2])
        ev["at_s"] = -1.0
        lines[2] = json.dumps(ev)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ReproError, match="non-decreasing"):
            read_trace(path)

    def test_empty_file_refused(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("")
        with pytest.raises(ReproError, match="empty"):
            read_trace(path)
