"""The percentile definition is load-bearing: every p99 number in the
``BENCH_e13_latency.json`` trajectory flows through
:func:`repro.loadgen.analyze.percentile`. These tests pin it to the
exact linear-interpolation ("type 7") rule via a from-first-principles
reference and via numpy's implementation, and nail the edge cases
(empty, singleton, ties, the endpoints) so the definition can never
drift silently.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.loadgen import percentile


def reference_percentile(values, q):
    """Naive sorted-list linear interpolation, written independently of
    the implementation under test."""
    xs = sorted(values)
    rank = (len(xs) - 1) * q / 100.0
    lo, hi = math.floor(rank), math.ceil(rank)
    if lo == hi:
        return float(xs[lo])
    return xs[lo] + (rank - lo) * (xs[hi] - xs[lo])


finite = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)


class TestAgainstReferences:
    @given(
        values=st.lists(finite, min_size=1, max_size=60),
        q=st.floats(min_value=0.0, max_value=100.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_matches_naive_reference(self, values, q):
        got = percentile(values, q)
        want = reference_percentile(values, q)
        assert got == pytest.approx(want, rel=1e-12, abs=1e-9)

    @given(
        values=st.lists(finite, min_size=1, max_size=60),
        q=st.floats(min_value=0.0, max_value=100.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_matches_numpy_linear(self, values, q):
        got = percentile(values, q)
        want = float(np.percentile(np.asarray(values, dtype=float), q))
        assert got == pytest.approx(want, rel=1e-9, abs=1e-9)


class TestEdgeCases:
    def test_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            percentile([], 50.0)

    def test_out_of_range_q_raises(self):
        with pytest.raises(ValueError, match="0, 100"):
            percentile([1.0], 101.0)
        with pytest.raises(ValueError, match="0, 100"):
            percentile([1.0], -0.1)

    def test_singleton_is_its_value_for_every_q(self):
        for q in (0.0, 1.0, 50.0, 99.0, 100.0):
            assert percentile([7.25], q) == 7.25

    def test_endpoints_are_min_and_max(self):
        xs = [9.0, 1.0, 4.0, 4.0, 2.0]
        assert percentile(xs, 0.0) == 1.0
        assert percentile(xs, 100.0) == 9.0

    def test_all_tied_values(self):
        assert percentile([3.0] * 10, 99.0) == 3.0

    def test_exact_median_of_even_count_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50.0) == 2.5

    def test_p99_interpolates_between_last_two(self):
        xs = list(range(100, 0, -1))  # 1..100, shuffled order irrelevant
        # rank = 99 * 0.99 = 98.01 -> between xs_sorted[98]=99, [99]=100
        assert percentile(xs, 99.0) == pytest.approx(99.01)

    def test_input_order_irrelevant(self):
        xs = [5.0, 1.0, 9.0, 3.0]
        assert percentile(xs, 75.0) == percentile(sorted(xs), 75.0)

    def test_integer_inputs_coerced(self):
        assert percentile([1, 2, 3], 50.0) == 2.0
